"""Latch LCO: a single-use countdown (HPX ``hpx::latch``)."""

from __future__ import annotations

from ...errors import RuntimeStateError
from .. import instrument
from ..futures import Future, Promise

__all__ = ["Latch"]


class Latch:
    """Counts down from ``count``; waiters release when it hits zero."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise RuntimeStateError(f"latch count must be >= 0, got {count}")
        self._count = count
        self._initial = count
        self._promise = Promise()
        probe = instrument.probe
        if probe is not None:
            probe.lco_labelled(self._promise._state, f"latch(0/{count} arrived)")
        if count == 0:
            self._promise.set_value(None)

    @property
    def count(self) -> int:
        return self._count

    def count_down(self, n: int = 1) -> None:
        """Decrement by ``n``; fires waiters at zero. Over-release raises."""
        if n < 1:
            raise RuntimeStateError(f"count_down needs n >= 1, got {n}")
        if n > self._count:
            raise RuntimeStateError(
                f"latch over-released: count={self._count}, count_down({n})"
            )
        self._count -= n
        probe = instrument.probe
        if probe is not None:
            # Every count-down is a release contribution: the opened
            # latch is ordered after *all* arrivals, not just the last.
            probe.state_contribute(self._promise._state)
            probe.lco_labelled(
                self._promise._state,
                f"latch({self._initial - self._count}/{self._initial} arrived)",
            )
        if self._count == 0:
            self._promise.set_value(None)

    def is_ready(self) -> bool:
        return self._count == 0

    def wait_future(self) -> Future:
        """A future that becomes ready when the latch reaches zero."""
        return self._promise.get_future()

    def wait(self) -> None:
        """Cooperatively block until the latch opens."""
        self.wait_future().get()

    def arrive_and_wait(self) -> None:
        """Count down once, then wait for the remaining parties."""
        self.count_down()
        self.wait()

    # Checkpoint protocol ----------------------------------------------------
    def checkpoint_state(self) -> dict[str, int]:
        """Snapshot the current and initial counts."""
        return {"count": self._count, "initial": self._initial}

    def restore_state(self, state: dict[str, int]) -> None:
        """Rebuild from a :meth:`checkpoint_state` snapshot, in place.

        The promise is replaced: futures handed out before the restore
        belong to the abandoned timeline.  A latch restored at zero is
        already open, exactly as after :meth:`count_down` reached zero.
        """
        self._count = int(state["count"])
        self._initial = int(state["initial"])
        self._promise = Promise()
        if self._count == 0:
            self._promise.set_value(None)
