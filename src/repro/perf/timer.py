"""High-resolution timer (``hpx::util::high_resolution_timer``).

Measures *wall* time by default; given a thread pool it measures
*virtual* time instead, so the same timing code brackets both real
kernels and simulated runs (Listing 2 lines 22/31).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.threads.pool import ThreadPool

__all__ = ["HighResolutionTimer"]


class HighResolutionTimer:
    """Started on construction; ``elapsed()`` reads, ``restart()`` rearms."""

    def __init__(self, pool: "Optional[ThreadPool]" = None) -> None:
        self._pool = pool
        self._start = self._now()

    def _now(self) -> float:
        if self._pool is not None:
            return self._pool.makespan
        return time.perf_counter()  # repro-lint: disable=PX101 -- wall fallback off-pool

    def elapsed(self) -> float:
        """Seconds since construction or the last restart."""
        return self._now() - self._start

    def restart(self) -> float:
        """Re-arm the timer; returns the elapsed time that was on it."""
        now = self._now()
        elapsed = now - self._start
        self._start = now
        return elapsed
