"""Measurement harness: the paper's repetition-and-best protocol.

Sec. VI: *"We run each variant of the 1D stencil and 2D stencil for
three and five times respectively.  In case of 1D stencil, we report the
least time consumed amongst all runs.  For 2D stencil, we report the
maximum performance achieved."*  :func:`run_best` implements exactly
that protocol (best-of-N filters out OS noise on real hardware; on the
deterministic models it is a no-op, which the tests assert).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ValidationError

__all__ = ["Measurement", "run_best", "time_call"]


@dataclass(frozen=True)
class Measurement:
    """Outcome of a repeated measurement."""

    #: The reported (best) metric value.
    best: float
    #: Every repetition's metric, in run order.
    samples: tuple[float, ...]
    #: "min" (times) or "max" (rates).
    mode: str
    #: The last repetition's return value (for result verification).
    result: Any = None

    @property
    def spread(self) -> float:
        """Relative spread ``(max - min) / best`` -- measurement noise."""
        if self.best == 0:
            return 0.0
        return (max(self.samples) - min(self.samples)) / abs(self.best)


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call; returns ``(seconds, result)``."""
    start = time.perf_counter()  # repro-lint: disable=PX101 -- measures the repro itself
    result = fn()
    return time.perf_counter() - start, result  # repro-lint: disable=PX101


def run_best(
    fn: Callable[[], Any],
    repeats: int,
    mode: str = "min",
    metric: Callable[[float, Any], float] | None = None,
) -> Measurement:
    """Run ``fn`` ``repeats`` times, report the best metric.

    By default the metric is elapsed wall time and ``mode="min"`` (the
    1D protocol).  For rate-style metrics pass ``mode="max"`` and a
    ``metric(elapsed_seconds, result) -> value`` extractor (the 2D
    protocol: best GLUP/s of five runs).
    """
    if repeats < 1:
        raise ValidationError("repeats must be >= 1")
    if mode not in ("min", "max"):
        raise ValidationError(f"mode must be 'min' or 'max', got {mode!r}")
    samples: list[float] = []
    last_result: Any = None
    for _ in range(repeats):
        elapsed, last_result = time_call(fn)
        value = metric(elapsed, last_result) if metric is not None else elapsed
        samples.append(value)
    best = min(samples) if mode == "min" else max(samples)
    return Measurement(best=best, samples=tuple(samples), mode=mode, result=last_result)
