"""Processor datasheets (the paper's Table I).

:class:`ProcessorSpec` captures exactly the rows of Table I plus the few
microarchitectural facts the paper's analysis leans on (cache-line size,
NUMA layout, SIMD ISA).  Derived quantities -- peak GFLOP/s, FLOPs/cycle --
are computed, and the computed peak is cross-checked against the published
Table I value in the registry tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TopologyError

__all__ = ["ProcessorSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """Datasheet for one processor model (one row-set of Table I)."""

    name: str
    #: Marketing/vendor name, e.g. ``"Intel Xeon E5-2660 v3"``.
    vendor: str
    #: Core clock in GHz (Table I row "Processor Clock Speed").
    clock_ghz: float
    #: Physical cores per processor (compute cores only for A64FX).
    cores_per_processor: int
    #: Processors (sockets) per node.
    processors_per_node: int
    #: Hardware threads per core (SMT ways).
    threads_per_core: int
    #: Human-readable vector-unit description (Table I row "Vectorization").
    vector_pipeline: str
    #: Double-precision FLOPs per cycle per core (Table I).
    dp_flops_per_cycle: int
    #: SIMD ISA name understood by :mod:`repro.simd` ("avx2", "neon", "sve").
    isa: str
    #: SIMD register width in bits (512 for SVE as configured in the paper).
    vector_bits: int
    #: Number of SIMD pipelines per core (1 or 2 in Table I).
    simd_pipelines: int
    #: Cache line size in bytes. 64 everywhere except A64FX's 256 B lines,
    #: which the paper credits for "implicit cache blocking" (~49 % boost).
    cache_line_bytes: int = 64
    #: NUMA domains per *node* and cores per domain.
    numa_domains: int = 1
    #: Helper cores (A64FX has 4 OS-assistant cores not used for compute).
    helper_cores: int = 0
    #: Extra notes carried into reports.
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise TopologyError(f"{self.name}: clock must be positive")
        if self.cores_per_processor <= 0 or self.processors_per_node <= 0:
            raise TopologyError(f"{self.name}: core/processor counts must be positive")
        if self.threads_per_core < 1:
            raise TopologyError(f"{self.name}: threads_per_core must be >= 1")
        if self.cores_per_node % self.numa_domains != 0:
            raise TopologyError(
                f"{self.name}: {self.cores_per_node} cores do not divide evenly "
                f"into {self.numa_domains} NUMA domains"
            )
        if self.vector_bits not in (128, 256, 512):
            raise TopologyError(f"{self.name}: unsupported vector width {self.vector_bits}")

    # Derived quantities ---------------------------------------------------
    @property
    def cores_per_node(self) -> int:
        """Total compute cores in one node."""
        return self.cores_per_processor * self.processors_per_node

    @property
    def cores_per_domain(self) -> int:
        """Compute cores in one NUMA domain."""
        return self.cores_per_node // self.numa_domains

    @property
    def pus_per_node(self) -> int:
        """Total hardware threads (processing units) in one node."""
        return self.cores_per_node * self.threads_per_core

    @property
    def peak_gflops(self) -> float:
        """Node-level double-precision peak in GFLOP/s (Table I last row)."""
        return self.clock_ghz * self.dp_flops_per_cycle * self.cores_per_node

    def simd_lanes(self, dtype_bytes: int) -> int:
        """Number of SIMD lanes for an element of ``dtype_bytes`` bytes."""
        if dtype_bytes <= 0 or self.vector_bits % (8 * dtype_bytes) != 0:
            raise TopologyError(
                f"{self.name}: {dtype_bytes}-byte elements do not pack into "
                f"{self.vector_bits}-bit vectors"
            )
        return self.vector_bits // (8 * dtype_bytes)

    def table1_row(self) -> dict[str, str]:
        """Render this spec as the corresponding Table I column."""
        return {
            "Processor": self.name,
            "Processor Clock Speed": f"{self.clock_ghz:g}GHz",
            "Cores per processors": (
                f"{self.cores_per_processor} (compute) + {self.helper_cores} (helper)"
                if self.helper_cores
                else str(self.cores_per_processor)
            ),
            "Processors per node": str(self.processors_per_node),
            "Threads per core": str(self.threads_per_core),
            "Vectorization": self.vector_pipeline,
            "Double Precision FLOPS per cycle": str(self.dp_flops_per_cycle),
            "Peak Performance in GFLOP/s": f"{self.peak_gflops:.0f}",
        }
