"""Tests for the calibration self-checks."""

import dataclasses

import pytest

from repro.errors import ValidationError
from repro.hardware import machine
from repro.hardware.validate import validate_all, validate_machine


def test_all_registered_machines_are_valid():
    validate_all()  # raises on any inconsistency


def test_validate_machine_empty_for_valid(any_machine):
    assert validate_machine(any_machine) == []


def _with_calibration(model, **overrides):
    cal = dataclasses.replace(model.calibration, **overrides)
    return dataclasses.replace(model, calibration=cal)


def test_detects_bad_efficiency():
    broken = _with_calibration(machine("a64fx"), stencil2d_efficiency=1.5)
    assert any("stencil2d_efficiency" in p for p in validate_machine(broken))


def test_detects_negative_overhead():
    broken = _with_calibration(machine("a64fx"), per_step_overhead_s=-1.0)
    assert any("overhead" in p for p in validate_machine(broken))


def test_detects_simd_below_auto():
    rates = dict(machine("thunderx2").calibration.single_core_glups)
    rates[("float32", "simd")] = rates[("float32", "auto")] / 2
    broken = _with_calibration(machine("thunderx2"), single_core_glups=rates)
    assert any("simd rate below auto" in p for p in validate_machine(broken))


def test_detects_missing_variant():
    rates = dict(machine("kunpeng916").calibration.single_core_glups)
    del rates[("float64", "simd")]
    broken = _with_calibration(machine("kunpeng916"), single_core_glups=rates)
    assert any("missing single-core rate" in p for p in validate_machine(broken))


def test_detects_absurd_rate():
    rates = dict(machine("xeon-e5-2660v3").calibration.single_core_glups)
    rates[("float32", "simd")] = 1000.0
    broken = _with_calibration(machine("xeon-e5-2660v3"), single_core_glups=rates)
    assert any("wildly above" in p for p in validate_machine(broken))


def test_detects_blocking_flag_inconsistency():
    broken = _with_calibration(
        machine("xeon-e5-2660v3"),
        blocking_doubles=False,
        blocking_doubles_from_cores=8,
    )
    assert any("blocking_doubles_from_cores" in p for p in validate_machine(broken))


def test_validate_all_raises_with_message(monkeypatch):
    import repro.hardware.validate as validate_module

    broken = _with_calibration(machine("a64fx"), stencil1d_efficiency=0.0)
    monkeypatch.setattr(
        validate_module, "machine", lambda name: broken
    )
    with pytest.raises(ValidationError, match="calibration inconsistencies"):
        validate_module.validate_all()
