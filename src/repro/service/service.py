"""The durable multi-tenant job service, tying the layers together.

:class:`JobService` owns one service directory (journal + per-job
checkpoint trails) and composes the store, lease manager, fair
scheduler, admission control, and executor into the lifecycle clients
see::

    submit --> pending --> claim (lease) --> running --> done
                  ^            |                 |-----> failed (cause)
                  |            |                 '-----> cancelled
                  '---- lease expiry / retry backoff ----'

Durability invariants (asserted by the chaos suite):

* every state change is journalled before it is visible;
* opening the service after a crash requeues claimed/running jobs --
  their in-process workers cannot have survived the process;
* terminal transitions are exactly-once: replay can never re-terminate
  a job, a resubmit with a used dedupe key returns the original job.

Observability: every tenant gets ``/jobs{tenant}/count/...``
perfcounters (the service-side mirror of the runtime's counter path
grammar) and every lifecycle edge emits a
:class:`~repro.runtime.trace.TraceEvent` through ``event_hook``.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import ConfigError, JobShedError, JobStateError, UnknownJobError
from ..runtime.trace import TraceEvent
from .admission import AdmissionControl, TenantQuota
from .clock import Clock, wall_clock
from .executor import JobRunner
from .jobs import Job, JobState, JobStore, TERMINAL_STATES
from .leases import Lease, LeaseManager, RetryBudget
from .scheduler import FairJobScheduler

__all__ = ["JobService", "ServicePolicy"]

#: States meaning "a worker owns this job right now".
_ACTIVE_STATES = frozenset({JobState.CLAIMED, JobState.RUNNING})

#: Per-tenant counter names the service maintains.
_COUNTER_NAMES = (
    "submitted",
    "deduped",
    "completed",
    "failed",
    "cancelled",
    "retried",
    "requeued",
    "shed",
    "lease-expired",
)


@dataclass(frozen=True)
class ServicePolicy:
    """All the service's tunable knobs in one immutable bundle."""

    lease_seconds: float = 30.0
    max_attempts: int = 3
    retry_base_seconds: float = 0.5
    retry_factor: float = 2.0
    retry_cap_seconds: float = 30.0
    max_backlog: int = 1024
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 30.0
    epoch_steps: int = 10
    keep_epochs: int = 2
    cleanup_on_terminal: bool = True
    sync_journal: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.epoch_steps < 1:
            raise ConfigError("epoch_steps must be >= 1")


class JobService:
    """One durable job service over one service directory."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        *,
        clock: Optional[Clock] = None,
        policy: Optional[ServicePolicy] = None,
    ) -> None:
        self.root = os.fspath(root)
        self.policy = policy or ServicePolicy()
        self._clock: Clock = clock if clock is not None else wall_clock()
        os.makedirs(self.root, exist_ok=True)
        self.store = JobStore(
            os.path.join(self.root, "jobs.journal"),
            clock=self._clock,
            sync=self.policy.sync_journal,
        )
        self.leases = LeaseManager(
            self._clock, lease_seconds=self.policy.lease_seconds
        )
        self.scheduler = FairJobScheduler()
        self.admission = AdmissionControl(
            self._clock,
            max_backlog=self.policy.max_backlog,
            breaker_threshold=self.policy.breaker_threshold,
            breaker_reset_seconds=self.policy.breaker_reset_seconds,
        )
        self.retry = RetryBudget(
            base_seconds=self.policy.retry_base_seconds,
            factor=self.policy.retry_factor,
            cap_seconds=self.policy.retry_cap_seconds,
        )
        self.runner = JobRunner(
            os.path.join(self.root, "work"),
            epoch_steps=self.policy.epoch_steps,
            keep_epochs=self.policy.keep_epochs,
        )
        self._counters: dict[str, int] = {}
        self.events: deque[TraceEvent] = deque(maxlen=10_000)
        #: Patch point for external trace sinks (mirrors the runtime's
        #: ``OverloadController.event_hook`` convention).
        self.event_hook: Optional[Callable[[TraceEvent], None]] = None
        self.recovered_jobs = self._recover()

    # ------------------------------------------------------------------
    # observability

    def _bump(self, tenant: str, name: str, delta: int = 1) -> None:
        path = f"/jobs{{{tenant}}}/count/{name}"
        self._counters[path] = self._counters.get(path, 0) + delta

    def _emit(self, kind: str, tenant: str, job_id: str, **args: Any) -> None:
        event = TraceEvent(
            kind=kind,
            time=self._clock(),
            args={"tenant": tenant, "job_id": job_id, **args},
        )
        self.events.append(event)
        hook = self.event_hook
        if hook is not None:
            hook(event)

    def counters(self) -> dict[str, int]:
        """All per-tenant counters, sorted by path."""
        return dict(sorted(self._counters.items()))

    def query_counter(self, path: str) -> int:
        return self._counters.get(path, 0)

    # ------------------------------------------------------------------
    # recovery

    def _recover(self) -> int:
        """Requeue every non-terminal job found in the replayed journal.

        The service process just started, so any worker that held a
        lease is gone: ``claimed``/``running`` jobs go straight back to
        ``pending`` (keeping their attempt count and backoff), and
        ``pending`` jobs re-enter the fair queues.
        """
        now = self._clock()
        recovered = 0
        for job in self.store.jobs():
            # Reconstruct the durable counters from replayed state so
            # `repro jobs counters` means the same thing across
            # restarts.  Event-ish counters (deduped, shed, requeued,
            # lease-expired) stay process-local.
            self._bump(job.tenant, "submitted")
            self._bump(job.tenant, "retried", max(0, job.attempts - 1))
            if job.state is JobState.DONE:
                self._bump(job.tenant, "completed")
            elif job.state is JobState.FAILED:
                self._bump(job.tenant, "failed")
            elif job.state is JobState.CANCELLED:
                self._bump(job.tenant, "cancelled")
            if job.terminal:
                continue
            if job.state in _ACTIVE_STATES:
                self.store.transition(
                    job.job_id,
                    JobState.PENDING,
                    lease_owner=None,
                    lease_expires_at=None,
                )
                self._bump(job.tenant, "requeued")
                self._emit("job_requeued", job.tenant, job.job_id, reason="restart")
            self.scheduler.enqueue(
                job.tenant, job.job_id, not_before=job.not_before, now=now
            )
            recovered += 1
        return recovered

    # ------------------------------------------------------------------
    # client surface

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self.admission.set_quota(tenant, quota)
        self.scheduler.set_weight(tenant, quota.weight)

    def submit(
        self,
        tenant: str,
        kind: str,
        params: dict[str, Any],
        *,
        dedupe_key: Optional[str] = None,
        max_attempts: Optional[int] = None,
    ) -> tuple[Job, bool]:
        """Admit and durably create a job; idempotent under ``dedupe_key``.

        Returns ``(job, created)``.  A resubmission with a dedupe key
        the tenant already used returns the *original* job (whatever its
        state, including terminal) without consulting admission control
        -- retrying a submit must never be punished as new load.
        Rejections raise :class:`~repro.errors.JobShedError` carrying
        ``retry_after``; nothing is ever dropped silently.
        """
        job, created = self._submit_dedupe_check(tenant, dedupe_key)
        if job is not None:
            return job, created
        backlog = self.store.jobs(states=None)
        open_jobs = [j for j in backlog if not j.terminal]
        tenant_pending = sum(1 for j in open_jobs if j.tenant == tenant)
        try:
            self.admission.check(
                tenant, tenant_pending=tenant_pending, total_backlog=len(open_jobs)
            )
        except JobShedError as exc:
            self._bump(tenant, "shed")
            self._emit(
                "job_shed", tenant, "", reason=str(exc), retry_after=exc.retry_after
            )
            raise
        job, created = self.store.submit(
            tenant,
            kind,
            params,
            dedupe_key=dedupe_key,
            max_attempts=max_attempts or self.policy.max_attempts,
        )
        self.scheduler.enqueue(
            tenant, job.job_id, not_before=job.not_before, now=self._clock()
        )
        self._bump(tenant, "submitted")
        self._emit("job_submitted", tenant, job.job_id, job_kind=kind)
        return job, created

    def _submit_dedupe_check(
        self, tenant: str, dedupe_key: Optional[str]
    ) -> tuple[Optional[Job], bool]:
        if dedupe_key is None:
            return None, True
        job, created = None, True
        for candidate in self.store.jobs(tenant=tenant):
            if candidate.dedupe_key == dedupe_key:
                job, created = candidate, False
                self._bump(tenant, "deduped")
                self._emit("job_deduped", tenant, candidate.job_id)
                break
        return job, created

    def status(self, job_id: str) -> dict[str, Any]:
        job = self.store.get(job_id)
        info = job.describe()
        lease = self.leases.holder(job_id)
        info["lease"] = (
            None
            if lease is None
            else {"owner": lease.owner, "expires_at": lease.expires_at}
        )
        return info

    def cancel(self, job_id: str) -> Job:
        """Cancel wherever the job is; terminal jobs refuse (exactly-once)."""
        job = self.store.get(job_id)
        if job.terminal:
            raise JobStateError(
                f"job {job_id!r} is already terminal ({job.state}); "
                f"terminal states are exactly-once"
            )
        self.scheduler.remove(job.tenant, job_id)
        self.leases.revoke(job_id)
        job = self.store.transition(
            job_id, JobState.CANCELLED, lease_owner=None, lease_expires_at=None
        )
        self._bump(job.tenant, "cancelled")
        self._emit("job_cancelled", job.tenant, job_id)
        return job

    def list_jobs(
        self, *, tenant: Optional[str] = None, state: Optional[str] = None
    ) -> list[Job]:
        states = None if state is None else [JobState(state)]
        return self.store.jobs(tenant=tenant, states=states)

    # ------------------------------------------------------------------
    # worker surface

    def _tenants_at_capacity(self) -> set[str]:
        active: dict[str, int] = {}
        for job in self.store.jobs(states=_ACTIVE_STATES):
            active[job.tenant] = active.get(job.tenant, 0) + 1
        return {
            tenant
            for tenant, count in active.items()
            if count >= self.admission.quota(tenant).max_active
        }

    def claim(self, worker: str) -> Optional[tuple[Job, Lease]]:
        """Hand the fairest eligible pending job to ``worker``.

        Expired leases are harvested first, so a dead worker's job can
        be re-claimed by the very call that notices it.  Returns None
        when nothing is runnable right now (everything terminal, leased,
        in backoff, or its tenant at quota).
        """
        self.expire_leases()
        picked = self.scheduler.next_job(
            self._clock(), skip_tenants=self._tenants_at_capacity()
        )
        if picked is None:
            return None
        tenant, job_id = picked
        job = self.store.get(job_id)
        lease = self.leases.grant(job_id, worker)
        job = self.store.transition(
            job_id,
            JobState.CLAIMED,
            attempts=job.attempts + 1,
            lease_owner=worker,
            lease_expires_at=lease.expires_at,
        )
        self._emit("job_claimed", tenant, job_id, worker=worker, attempt=job.attempts)
        return job, lease

    def _check_owner(self, job_id: str, worker: str) -> Job:
        job = self.store.get(job_id)
        lease = self.leases.holder(job_id)
        if lease is None or lease.owner != worker or lease.expired(self._clock()):
            raise JobStateError(
                f"{worker!r} does not hold a live lease on job {job_id!r}"
            )
        return job

    def start(self, job_id: str, worker: str) -> Job:
        self._check_owner(job_id, worker)
        job = self.store.transition(job_id, JobState.RUNNING)
        self._emit("job_started", job.tenant, job_id, worker=worker)
        return job

    def renew(self, job_id: str, worker: str) -> Lease:
        self._check_owner(job_id, worker)
        return self.leases.renew(job_id, worker)

    def complete(self, job_id: str, worker: str, result: dict[str, Any]) -> Job:
        job = self._check_owner(job_id, worker)
        job = self.store.transition(
            job_id,
            JobState.DONE,
            result=result,
            lease_owner=None,
            lease_expires_at=None,
        )
        self.leases.release(job_id, worker)
        self.admission.record_outcome(job.tenant, failed=False)
        if self.policy.cleanup_on_terminal:
            self.runner.cleanup(job_id)
        self._bump(job.tenant, "completed")
        self._emit("job_done", job.tenant, job_id, worker=worker)
        return job

    def fail_attempt(self, job_id: str, worker: str, cause: str) -> Job:
        """One attempt failed: retry with backoff, or fail with cause."""
        job = self._check_owner(job_id, worker)
        self.leases.release(job_id, worker)
        return self._retry_or_fail(job, cause)

    def _retry_or_fail(self, job: Job, cause: str) -> Job:
        if self.retry.exhausted(job.attempts, job.max_attempts):
            job = self.store.transition(
                job.job_id,
                JobState.FAILED,
                failure=(
                    f"{cause} (retry budget exhausted after "
                    f"{job.attempts}/{job.max_attempts} attempts)"
                ),
                lease_owner=None,
                lease_expires_at=None,
            )
            self.admission.record_outcome(job.tenant, failed=True)
            if self.policy.cleanup_on_terminal:
                self.runner.cleanup(job.job_id)
            self._bump(job.tenant, "failed")
            self._emit("job_failed", job.tenant, job.job_id, cause=cause)
            return job
        delay = self.retry.delay(job.attempts - 1)
        not_before = self._clock() + delay
        job = self.store.transition(
            job.job_id,
            JobState.PENDING,
            not_before=not_before,
            lease_owner=None,
            lease_expires_at=None,
        )
        self.scheduler.enqueue(
            job.tenant, job.job_id, not_before=not_before, now=self._clock()
        )
        self._bump(job.tenant, "retried")
        self._emit(
            "job_retried", job.tenant, job.job_id, cause=cause, backoff=delay
        )
        return job

    def expire_leases(self) -> list[str]:
        """Harvest expired leases; requeue or fail their jobs."""
        expired = []
        for lease in self.leases.expired():
            try:
                job = self.store.get(lease.job_id)
            except UnknownJobError:  # pragma: no cover - defensive
                continue
            if job.state not in _ACTIVE_STATES:
                continue
            self._bump(job.tenant, "lease-expired")
            self._emit(
                "lease_expired", job.tenant, job.job_id, worker=lease.owner
            )
            self._retry_or_fail(
                job, f"lease expired (worker {lease.owner!r} presumed dead)"
            )
            expired.append(job.job_id)
        return expired

    # ------------------------------------------------------------------
    # in-process worker loop (CLI `repro jobs work`, tests, chaos)

    def run_one(self, worker: str) -> Optional[Job]:
        """Claim, drive, and settle a single job; None when idle."""
        claimed = self.claim(worker)
        if claimed is None:
            return None
        job, _lease = claimed
        self.start(job.job_id, worker)
        try:
            result = self.runner.run(self.store.get(job.job_id))
        except Exception as exc:  # noqa: BLE001 - the workload is arbitrary
            return self.fail_attempt(job.job_id, worker, f"{type(exc).__name__}: {exc}")
        return self.complete(job.job_id, worker, result)

    def drain(self, worker: str, *, max_jobs: Optional[int] = None) -> int:
        """Run jobs until nothing is claimable; returns jobs settled."""
        settled = 0
        while max_jobs is None or settled < max_jobs:
            if self.run_one(worker) is None:
                break
            settled += 1
        return settled

    # ------------------------------------------------------------------

    def open_jobs(self) -> list[Job]:
        return [job for job in self.store.jobs() if not job.terminal]

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
