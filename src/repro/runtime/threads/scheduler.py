"""Task schedulers: FIFO, static, and work-stealing.

HPX's default scheduler keeps one lock-free deque per worker and steals
when a worker runs dry; ``schedule(static)``-style executors bind chunks
to workers with no stealing.  The cooperative analogues here preserve
the *placement decisions* (which worker runs which task, and when a
steal happens), which is what matters for the virtual-time model; they
need no locks because execution is single-threaded.

Everything here is hot: ``__len__`` runs on every progress-engine step
and ``acquire`` on every task dispatch, so the queues keep explicit
size counters (no per-call sums over deques) and the work-stealing
scheduler keeps a live set of victims that actually hold stealable
work, so thieves stop probing obviously-empty queues.
"""

from __future__ import annotations

from collections import deque
from typing import Container, Generic, Optional, TypeVar

from ...errors import ConfigError, RuntimeStateError
from .hpx_thread import HpxThread, ThreadPriority

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "StaticScheduler",
    "WeightedFairQueues",
    "WorkStealingScheduler",
    "make_scheduler",
]

T = TypeVar("T")

#: Priorities in service order: HIGH tasks always run before NORMAL/LOW
#: on the same worker (HPX's priority-queue scheduler behaviour).
_PRIORITIES = (ThreadPriority.HIGH, ThreadPriority.NORMAL, ThreadPriority.LOW)

_NORMAL = ThreadPriority.NORMAL
_HIGH = ThreadPriority.HIGH


class _PriorityDeques:
    """A bundle of one deque per priority level.

    One deque per slot instead of a priority→deque dict: the dominant
    workload queues only NORMAL tasks, so the common pop is a single
    truthiness branch.  ``size`` counts everything queued; ``regular``
    counts HIGH+NORMAL only -- the stealable portion (see
    :meth:`pop_back`) -- and both are maintained incrementally so
    schedulers never scan to learn a length.
    """

    __slots__ = ("_high", "_normal", "_low", "size", "regular")

    def __init__(self) -> None:
        self._high: deque[HpxThread] = deque()
        self._normal: deque[HpxThread] = deque()
        self._low: deque[HpxThread] = deque()
        self.size = 0
        self.regular = 0

    def push(self, task: HpxThread) -> None:
        # HpxThread.__init__ normalises priority through ThreadPriority(),
        # so identity comparison against the enum members is sound.
        priority = task.priority
        if priority is _NORMAL:
            self._normal.append(task)
            self.regular += 1
        elif priority is _HIGH:
            self._high.append(task)
            self.regular += 1
        else:
            self._low.append(task)
        self.size += 1

    def pop_front(self) -> Optional[HpxThread]:
        """Owner pop: highest priority first, FIFO within a level."""
        if self._high:
            self.size -= 1
            self.regular -= 1
            return self._high.popleft()
        if self._normal:
            self.size -= 1
            self.regular -= 1
            return self._normal.popleft()
        if self._low:
            self.size -= 1
            return self._low.popleft()
        return None

    def pop_back(self) -> Optional[HpxThread]:
        """Thief pop: regular work only, oldest within a level.

        LOW is background work (virtual-time timers); stealing it would
        let a timer fire on an idle thief while regular tasks queued on
        *other* victims are still runnable -- a priority inversion.  It
        stays with its owner, which pops it only when it has nothing
        better (:meth:`pop_front`).
        """
        if self._high:
            self.size -= 1
            self.regular -= 1
            return self._high.pop()
        if self._normal:
            self.size -= 1
            self.regular -= 1
            return self._normal.pop()
        return None

    def drain(self) -> list[HpxThread]:
        """Remove and return every queued task (crash decommissioning)."""
        drained: list[HpxThread] = []
        drained.extend(self._high)
        drained.extend(self._normal)
        drained.extend(self._low)
        self._high.clear()
        self._normal.clear()
        self._low.clear()
        self.size = 0
        self.regular = 0
        return drained

    def snapshot(self) -> list[HpxThread]:
        """Every queued task, service order, without removing anything."""
        return [*self._high, *self._normal, *self._low]

    def remove(self, task: HpxThread) -> bool:
        """Remove ``task`` from whichever level holds it (O(n) scan --
        schedule-exploration only, never on the production dispatch path)."""
        for queue, regular in (
            (self._high, True),
            (self._normal, True),
            (self._low, False),
        ):
            try:
                queue.remove(task)
            except ValueError:
                continue
            self.size -= 1
            if regular:
                self.regular -= 1
            return True
        return False

    def __len__(self) -> int:
        return self.size


class WeightedFairQueues(Generic[T]):
    """Stride scheduling over named flows, one FIFO deque per flow.

    The same shape as the per-worker :class:`_PriorityDeques` bundle one
    level up: explicit incremental size counters, deque storage, and a
    deterministic pop order.  Here the "priority" axis is *fairness
    between flows* instead of urgency within one queue: every flow
    carries a weight, each pop advances the flow's virtual pass by
    ``scale / weight``, and :meth:`pop` always serves the non-empty flow
    with the smallest pass (ties broken by flow name, so the order is a
    pure function of the push/pop history).  A flow with weight 2 is
    therefore served twice as often as a weight-1 flow under sustained
    backlog, and an idle flow accumulates no credit: when it becomes
    non-empty again its pass is advanced to the current global floor.

    The multi-tenant job service layers its per-tenant scheduling on
    this structure; it is generic so queued items can be jobs, tasks, or
    anything else with FIFO-per-flow semantics.
    """

    __slots__ = ("scale", "_queues", "_weights", "_passes", "size")

    def __init__(self, scale: float = 1024.0) -> None:
        if scale <= 0:
            raise ConfigError("WeightedFairQueues scale must be positive")
        self.scale = scale
        self._queues: dict[str, deque[T]] = {}
        self._weights: dict[str, float] = {}
        self._passes: dict[str, float] = {}
        self.size = 0

    def set_weight(self, flow: str, weight: float) -> None:
        """Register ``flow`` (or update its weight).  Weight must be > 0."""
        if weight <= 0:
            raise ConfigError(f"flow {flow!r} weight must be positive, got {weight}")
        self._weights[flow] = weight
        if flow not in self._queues:
            self._queues[flow] = deque()
            self._passes[flow] = self._floor()

    def _floor(self) -> float:
        """Global virtual-pass floor: min pass among backlogged flows."""
        backlogged = [
            self._passes[flow] for flow, q in self._queues.items() if q
        ]
        return min(backlogged, default=0.0)

    def push(self, flow: str, item: T) -> None:
        """Queue ``item`` on ``flow`` (registered with weight 1 if new)."""
        if flow not in self._queues:
            self.set_weight(flow, self._weights.get(flow, 1.0))
        queue = self._queues[flow]
        if not queue:
            # Re-entering service: no credit accrues while idle.
            self._passes[flow] = max(self._passes[flow], self._floor())
        queue.append(item)
        self.size += 1

    def pop(self, skip: Container[str] = ()) -> Optional[tuple[str, T]]:
        """Serve the eligible flow with the smallest virtual pass.

        Flows named in ``skip`` (e.g. tenants at their concurrency cap)
        are passed over without being charged.  Returns ``(flow, item)``
        or None when every non-empty flow is skipped.
        """
        best: Optional[str] = None
        best_pass = 0.0
        for flow in sorted(self._queues):
            if not self._queues[flow] or flow in skip:
                continue
            flow_pass = self._passes[flow]
            if best is None or flow_pass < best_pass:
                best = flow
                best_pass = flow_pass
        if best is None:
            return None
        item = self._queues[best].popleft()
        self._passes[best] = best_pass + self.scale / self._weights[best]
        self.size -= 1
        return (best, item)

    def pending(self, flow: Optional[str] = None) -> int:
        if flow is None:
            return self.size
        queue = self._queues.get(flow)
        return len(queue) if queue else 0

    def flows(self) -> list[str]:
        """Registered flow names, sorted."""
        return sorted(self._queues)

    def remove(self, flow: str, item: T) -> bool:
        """Withdraw one queued item (cancellation); O(n) on the flow."""
        queue = self._queues.get(flow)
        if not queue:
            return False
        try:
            queue.remove(item)
        except ValueError:
            return False
        self.size -= 1
        return True

    def __len__(self) -> int:
        return self.size


class Scheduler:
    """Interface: queue tasks, hand them to workers."""

    name = "abstract"

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise RuntimeStateError("scheduler needs at least one worker")
        self.n_workers = n_workers

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        """Queue a task, optionally bound/hinted to a worker."""
        raise NotImplementedError

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        """Get a task for ``worker_id`` or None if it can find none."""
        raise NotImplementedError

    def drain(self) -> list[HpxThread]:
        """Remove and return every queued task (crash decommissioning)."""
        raise NotImplementedError

    def snapshot(self) -> list[HpxThread]:
        """Every queued task in canonical (worker, service) order.

        The schedule-controller seam: an exploration strategy inspects
        the full ready set at a dispatch point, then claims its pick via
        :meth:`remove`.  Production dispatch never calls this.
        """
        raise NotImplementedError

    def remove(self, task: HpxThread) -> bool:
        """Withdraw a specific queued task (claimed by a controller).

        Returns False if the task is not queued here.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def pending_low(self) -> int:
        """Queued LOW-priority (sheddable background) tasks.

        The overload perfcounters split queue depth by sheddability;
        ``size - regular`` is already maintained incrementally, so this
        costs no scan.
        """
        raise NotImplementedError

    def _check_worker(self, worker_id: Optional[int]) -> None:
        if worker_id is not None and not 0 <= worker_id < self.n_workers:
            raise RuntimeStateError(
                f"worker {worker_id} out of range [0, {self.n_workers})"
            )


class FifoScheduler(Scheduler):
    """One global priority-FIFO queue; worker hints are ignored."""

    name = "fifo"

    def __init__(self, n_workers: int) -> None:
        super().__init__(n_workers)
        self._queue = _PriorityDeques()

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        self._check_worker(worker_hint)
        self._queue.push(task)

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        self._check_worker(worker_id)
        return self._queue.pop_front()

    def drain(self) -> list[HpxThread]:
        return self._queue.drain()

    def snapshot(self) -> list[HpxThread]:
        return self._queue.snapshot()

    def remove(self, task: HpxThread) -> bool:
        return self._queue.remove(task)

    def __len__(self) -> int:
        return self._queue.size

    def pending_low(self) -> int:
        return self._queue.size - self._queue.regular


class StaticScheduler(Scheduler):
    """Per-worker FIFO queues, no stealing (OpenMP ``schedule(static)``).

    Unhinted tasks are distributed round-robin.  A worker that drains its
    queue idles even if others are loaded -- exactly the imbalance the
    work-stealing ablation benchmark measures.
    """

    name = "static"

    def __init__(self, n_workers: int) -> None:
        super().__init__(n_workers)
        self._queues = [_PriorityDeques() for _ in range(n_workers)]
        self._rr = 0
        self._count = 0

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        self._check_worker(worker_hint)
        if worker_hint is None:
            worker_hint = self._rr
            self._rr = (self._rr + 1) % self.n_workers
        task.worker_id = worker_hint
        self._queues[worker_hint].push(task)
        self._count += 1

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        self._check_worker(worker_id)
        task = self._queues[worker_id].pop_front()
        if task is not None:
            self._count -= 1
        return task

    def drain(self) -> list[HpxThread]:
        drained: list[HpxThread] = []
        for queue in self._queues:
            drained.extend(queue.drain())
        self._count = 0
        return drained

    def snapshot(self) -> list[HpxThread]:
        tasks: list[HpxThread] = []
        for queue in self._queues:
            tasks.extend(queue.snapshot())
        return tasks

    def remove(self, task: HpxThread) -> bool:
        for queue in self._queues:
            if queue.remove(task):
                self._count -= 1
                return True
        return False

    def __len__(self) -> int:
        return self._count

    def pending_low(self) -> int:
        return sum(q.size - q.regular for q in self._queues)


class WorkStealingScheduler(Scheduler):
    """Per-worker deques with deterministic round-robin stealing.

    Owners pop FIFO from the front of their deque (HPX default for
    fairness); thieves steal from the back, which takes the oldest work a
    victim queued -- the classic contention-minimising split.

    ``_stealable`` tracks which workers currently hold regular
    (HIGH/NORMAL) work.  The steal loop still *visits* the same victims
    in the same round-robin order -- placement decisions are untouched --
    but a victim known to be empty costs a set-membership test instead
    of a deque probe.
    """

    name = "work-stealing"

    def __init__(self, n_workers: int, steal_attempts: int | None = None) -> None:
        super().__init__(n_workers)
        self._queues = [_PriorityDeques() for _ in range(n_workers)]
        self._rr = 0
        self.steal_attempts = (
            n_workers - 1 if steal_attempts is None else min(steal_attempts, n_workers - 1)
        )
        self.steals = 0  # statistic: successful steals
        self._count = 0
        self._stealable: set[int] = set()

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        self._check_worker(worker_hint)
        if worker_hint is None:
            worker_hint = self._rr
            self._rr = (self._rr + 1) % self.n_workers
        self._queues[worker_hint].push(task)
        self._count += 1
        if task.priority is not ThreadPriority.LOW:
            self._stealable.add(worker_hint)

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        self._check_worker(worker_id)
        own = self._queues[worker_id]
        task = own.pop_front()
        if task is not None:
            self._count -= 1
            if not own.regular:
                self._stealable.discard(worker_id)
            task.worker_id = worker_id
            return task
        # Steal round-robin from the next victims.  Empty victims are
        # still "visited" (k advances identically) so the attempt-budget
        # semantics -- and therefore every placement -- are unchanged.
        stealable = self._stealable
        for k in range(1, self.steal_attempts + 1):
            victim = (worker_id + k) % self.n_workers
            if victim not in stealable:
                continue
            queue = self._queues[victim]
            task = queue.pop_back()
            if not queue.regular:
                stealable.discard(victim)
            if task is not None:
                self._count -= 1
                task.worker_id = worker_id
                self.steals += 1
                return task
        return None

    def drain(self) -> list[HpxThread]:
        drained: list[HpxThread] = []
        for queue in self._queues:
            drained.extend(queue.drain())
        self._count = 0
        self._stealable.clear()
        return drained

    def snapshot(self) -> list[HpxThread]:
        tasks: list[HpxThread] = []
        for queue in self._queues:
            tasks.extend(queue.snapshot())
        return tasks

    def remove(self, task: HpxThread) -> bool:
        for worker_id, queue in enumerate(self._queues):
            if queue.remove(task):
                self._count -= 1
                if not queue.regular:
                    self._stealable.discard(worker_id)
                return True
        return False

    def __len__(self) -> int:
        return self._count

    def pending_low(self) -> int:
        return sum(q.size - q.regular for q in self._queues)


def make_scheduler(name: str, n_workers: int, steal_attempts: int | None = None) -> Scheduler:
    """Factory keyed by the ``threads.scheduler`` config value."""
    if name == "fifo":
        return FifoScheduler(n_workers)
    if name == "static":
        return StaticScheduler(n_workers)
    if name == "work-stealing":
        return WorkStealingScheduler(n_workers, steal_attempts)
    raise ConfigError(f"unknown scheduler {name!r}")
