"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_machines(capsys):
    code, out = run_cli(capsys, "machines")
    assert code == 0
    for name in ("xeon-e5-2660v3", "kunpeng916", "thunderx2", "a64fx"):
        assert name in out


def test_exhibits_all(capsys):
    code, out = run_cli(capsys, "exhibits")
    assert code == 0
    assert "TABLE I" in out
    assert "Fig 3" in out
    assert "TABLE VI" in out


def test_exhibits_selected(capsys):
    code, out = run_cli(capsys, "exhibits", "table1", "fig5")
    assert code == 0
    assert "TABLE I" in out and "Fig 5" in out
    assert "TABLE VI" not in out


def test_stream(capsys):
    code, out = run_cli(capsys, "stream", "--machine", "a64fx")
    assert code == 0
    assert "660.0" in out


def test_stream_scatter(capsys):
    code, out = run_cli(capsys, "stream", "--machine", "xeon-e5-2660v3",
                        "--pinning", "scatter")
    assert code == 0
    assert "GB/s" in out


def test_stencil1d_strong_and_weak(capsys):
    code, strong = run_cli(capsys, "stencil1d", "--machine", "xeon-e5-2660v3")
    assert code == 0
    assert "strong" in strong
    code, weak = run_cli(
        capsys, "stencil1d", "--machine", "kunpeng916", "--weak", "--nodes", "1", "8"
    )
    assert code == 0
    assert "weak" in weak


def test_stencil2d(capsys):
    code, out = run_cli(
        capsys, "stencil2d", "--machine", "thunderx2", "--dtype", "float64",
        "--mode", "auto",
    )
    assert code == 0
    assert "GLUP/s" in out


def test_counters(capsys):
    code, out = run_cli(capsys, "counters", "--machine", "a64fx")
    assert code == 0
    assert "Backend Stalls" in out


def test_trace(capsys):
    code, out = run_cli(capsys, "trace", "--nodes", "2", "--steps", "4")
    assert code == 0
    assert "locality-0/w0" in out
    assert "#" in out


def test_trace_export_and_metrics(capsys, tmp_path):
    import json

    trace_path = tmp_path / "demo.trace.json"
    metrics_path = tmp_path / "demo.metrics.json"
    code, out = run_cli(
        capsys, "trace", "--nodes", "2", "--steps", "4",
        "--export", str(trace_path), "--metrics", str(metrics_path),
    )
    assert code == 0
    assert str(trace_path) in out and str(metrics_path) in out
    trace = json.loads(trace_path.read_text())
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert {"M", "X", "s", "f"} <= phases
    metrics = json.loads(metrics_path.read_text())
    assert metrics["schema"] == "repro-metrics-v1"
    assert metrics["meta"] == {"nodes": 2, "steps": 4}
    assert metrics["counters"]["/threads{total}/count/cumulative"] > 0
    assert metrics["histograms"]["task_duration"]["count"] > 0


def test_counters_sampled_csv(capsys):
    code, out = run_cli(
        capsys, "counters", "--machine", "xeon-e5-2660v3",
        "--sample-interval", "1.0", "--steps", "4",
    )
    assert code == 0
    lines = out.strip().splitlines()
    assert lines[0].startswith("time,/threads{total}/count/cumulative")
    assert len(lines) >= 4  # header + one row per sampled second


def test_counters_sampled_json_to_file(capsys, tmp_path):
    import json

    out_path = tmp_path / "series.json"
    code, out = run_cli(
        capsys, "counters", "--machine", "xeon-e5-2660v3",
        "--sample-interval", "1.0", "--steps", "4",
        "--format", "json", "--output", str(out_path),
        "--paths", "/runtime/uptime", "/threads{total}/idle-rate",
    )
    assert code == 0
    assert str(out_path) in out
    document = json.loads(out_path.read_text())
    assert document["paths"] == ["/runtime/uptime", "/threads{total}/idle-rate"]
    assert document["samples"]


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["stream", "--machine", "epyc"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_lists_all_exhibits():
    parser = build_parser()
    # Smoke: help text builds without error.
    assert "exhibits" in parser.format_help()
