"""Latency histograms with percentile summaries.

The paper's tables report *distill* numbers (averages, rates); what a
runtime engineer actually debugs with are distributions -- a p99 queue
delay 100x the median is invisible in an average.  :class:`Histogram`
keeps the raw samples (runs here are small and deterministic), computes
interpolated percentiles, and renders a compact ASCII bar view.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.trace import Tracer

__all__ = [
    "Histogram",
    "task_duration_histogram",
    "queue_delay_histogram",
    "parcel_latency_histogram",
    "latency_histograms",
]

#: The percentiles every summary reports.
_SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class Histogram:
    """A named sample set with percentile summaries."""

    def __init__(self, name: str, unit: str = "s", values: Iterable[float] = ()) -> None:
        self.name = name
        self.unit = unit
        self.values: list[float] = [float(v) for v in values]

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValidationError(f"percentile {q} outside [0, 100]")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict:
        """JSON-ready summary: count/min/max/mean plus p50/p95/p99."""
        out = {
            "name": self.name,
            "unit": self.unit,
            "count": self.count,
            "min": min(self.values) if self.values else 0.0,
            "max": max(self.values) if self.values else 0.0,
            "mean": self.mean,
        }
        for q in _SUMMARY_PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out

    def render(self, bins: int = 10, width: int = 40) -> str:
        """ASCII bar view: ``bins`` equal-width buckets over [min, max]."""
        if bins < 1:
            raise ValidationError("histogram needs at least one bin")
        if not self.values:
            return f"{self.name}: (no samples)"
        lo, hi = min(self.values), max(self.values)
        if hi == lo:
            return f"{self.name}: {self.count} sample(s), all = {lo:.4g}{self.unit}"
        span = hi - lo
        counts = [0] * bins
        for value in self.values:
            index = min(int((value - lo) / span * bins), bins - 1)
            counts[index] += 1
        peak = max(counts)
        lines = [f"{self.name} ({self.count} samples, {self.unit})"]
        for i, count in enumerate(counts):
            left = lo + span * i / bins
            right = lo + span * (i + 1) / bins
            bar = "#" * (round(count / peak * width) if count else 0)
            lines.append(f"  [{left:.3g}, {right:.3g}) {bar} {count}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.3e})"


def task_duration_histogram(tracer: "Tracer") -> Histogram:
    """Virtual duration of every traced task."""
    return Histogram(
        "task-duration", values=(r.duration for r in tracer.records)
    )


def queue_delay_histogram(tracer: "Tracer") -> Histogram:
    """Time each traced task spent runnable but not running."""
    return Histogram(
        "queue-delay", values=(r.queue_delay for r in tracer.records)
    )


def parcel_latency_histogram(tracer: "Tracer") -> Histogram:
    """Send-to-arrival virtual latency of every traced parcel."""
    return Histogram(
        "parcel-latency", values=tracer.parcel_latencies().values()
    )


def latency_histograms(tracer: "Tracer") -> dict[str, Histogram]:
    """The standard latency distributions of one traced run."""
    return {
        "task_duration": task_duration_histogram(tracer),
        "queue_delay": queue_delay_histogram(tracer),
        "parcel_latency": parcel_latency_histogram(tracer),
    }
