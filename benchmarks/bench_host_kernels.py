"""Real host-silicon kernel benchmarks (wall clock, NumPy).

The honesty layer: the same stencil kernels whose *modelled* performance
regenerates Figs 4-8 are also run for real on the host, reporting actual
GLUP/s.  Grid sizes are scaled down from the paper's 8192x131072 to stay
CI-friendly; pass ``--paper-scale`` logic lives in the examples instead.
"""

import numpy as np
import pytest

from repro.simd.isa import AVX2
from repro.stencil import Jacobi2D, Heat1DParams, Heat1DPartitioned, analytic_heat_profile

NY, NX, STEPS = 256, 1026, 10


@pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
def test_host_jacobi_auto_kernel(benchmark, dtype):
    solver = Jacobi2D(NY, NX, dtype, mode="auto")
    solver.initialize()

    def run():
        solver.run(STEPS)
        return solver.lattice_site_updates

    lups = benchmark(run)
    assert lups > 0


@pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
def test_host_jacobi_vns_kernel(benchmark, dtype):
    solver = Jacobi2D(NY, NX, dtype, mode="simd", isa=AVX2)
    solver.initialize()
    benchmark(solver.run, STEPS)


def test_host_jacobi_glups_report(save_exhibit):
    """One-shot GLUP/s report for the host (wall clock)."""
    import time

    lines = ["Host 2D-stencil kernel rates (grid 256x1026, wall clock):"]
    for label, mode, isa in (("auto", "auto", None), ("vns/avx2", "simd", AVX2)):
        solver = Jacobi2D(NY, NX, np.float32, mode=mode, isa=isa)
        solver.initialize()
        start = time.perf_counter()
        solver.run(50)
        elapsed = time.perf_counter() - start
        glups = solver.lattice_site_updates / elapsed / 1e9
        lines.append(f"  {label}: {glups:.3f} GLUP/s")
    save_exhibit("host_jacobi_rates", "\n".join(lines))


def test_host_heat1d_kernel(benchmark):
    params = Heat1DParams()
    solver = Heat1DPartitioned(1 << 16, 8, params)
    solver.initialize(analytic_heat_profile(1 << 16))
    benchmark(solver.run, 5)
