"""A locality: one (virtual) node of the distributed machine."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import RuntimeStateError
from .threads.pool import ThreadPool

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime

__all__ = ["Locality"]


class Locality:
    """One node: an id, a thread pool over its cores, and runtime backrefs.

    In HPX a locality is "a synchronous domain of execution" -- typically
    one cluster node.  The paper's distributed runs use one locality per
    node with one worker per physical core.
    """

    def __init__(self, locality_id: int, pool: ThreadPool, runtime: "Runtime") -> None:
        if locality_id < 0:
            raise RuntimeStateError("locality id must be non-negative")
        self.locality_id = locality_id
        self.pool = pool
        self.runtime = runtime
        # Backrefs so tasks executing on this pool see the right frame.
        pool.locality = self  # type: ignore[attr-defined]
        pool.runtime = runtime  # type: ignore[attr-defined]

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Locality):
            return NotImplemented
        return other.locality_id == self.locality_id and other.runtime is self.runtime

    def __hash__(self) -> int:
        return hash((id(self.runtime), self.locality_id))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Locality({self.locality_id}, workers={self.n_workers})"
