"""Type-trait helpers (the paper's ``get_type`` meta-class analogue).

Listing 2 line 17 uses ``std::is_same`` plus a custom ``get_type``
meta-class to ask, of a generic container, "are your elements scalars or
NSIMD packs?" and to recover the underlying arithmetic type either way.
These helpers answer the same questions for Python containers of floats
or :class:`~repro.simd.pack.Pack` values, so generic kernels can branch
on the answer exactly like the C++ does.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import SimdError
from .pack import Pack

__all__ = ["is_pack", "is_pack_container", "element_kind", "underlying_dtype"]


def is_pack(value: Any) -> bool:
    """Is ``value`` a SIMD pack (vs a scalar)?"""
    return isinstance(value, Pack)


def is_pack_container(container: Sequence[Any] | np.ndarray) -> bool:
    """Is this a container of packs (Listing 2's ``is_same`` test)?

    Empty containers and NumPy arrays are scalar containers; mixed
    containers are rejected -- a generic kernel must see one layout.
    """
    if isinstance(container, np.ndarray):
        return False
    items = list(container)
    if not items:
        return False
    kinds = {isinstance(item, Pack) for item in items}
    if len(kinds) != 1:
        raise SimdError("container mixes packs and scalars")
    return kinds.pop()


def element_kind(container: Sequence[Any] | np.ndarray) -> str:
    """``"pack"`` or ``"scalar"`` -- what a generic kernel dispatches on."""
    return "pack" if is_pack_container(container) else "scalar"


def underlying_dtype(container: Sequence[Any] | np.ndarray) -> np.dtype:
    """The arithmetic element type, looking through packs (``get_type``)."""
    if isinstance(container, np.ndarray):
        dt = container.dtype
        if dt.type not in (np.float32, np.float64):
            raise SimdError(f"unsupported element type {dt}")
        return dt
    items = list(container)
    if not items:
        raise SimdError("cannot infer dtype of an empty container")
    first = items[0]
    if isinstance(first, Pack):
        dtypes = {item.dtype for item in items if isinstance(item, Pack)}
        if len(dtypes) != 1 or len(items) != sum(isinstance(i, Pack) for i in items):
            raise SimdError("pack container mixes dtypes or kinds")
        return dtypes.pop()
    if isinstance(first, (float, np.floating)):
        return np.dtype(type(first)) if isinstance(first, np.floating) else np.dtype(np.float64)
    raise SimdError(f"cannot infer dtype from element of type {type(first).__name__}")
