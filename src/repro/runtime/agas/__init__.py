"""Active Global Address Space (AGAS).

AGAS gives every distributed object a :class:`~repro.runtime.agas.gid.Gid`
that stays valid for the object's whole life -- even across migration to
another locality.  Work is therefore addressed to *objects*, not nodes;
the parcel layer resolves the GID at send time and ships the function to
wherever the object currently lives (the paper's "message-driven
computation" + "load balancing through object migration").
"""

from .gid import Gid
from .service import AgasService
from .component import Component

__all__ = ["Gid", "AgasService", "Component"]
