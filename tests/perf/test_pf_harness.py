"""Tests for the repetition-and-best measurement harness."""

import pytest

from repro.errors import ValidationError
from repro.perf.harness import Measurement, run_best, time_call


def test_time_call_returns_elapsed_and_result():
    elapsed, result = time_call(lambda: "value")
    assert elapsed >= 0.0
    assert result == "value"


def test_run_best_min_mode_paper_1d_protocol():
    """Three runs, least time reported (Sec. VI)."""
    calls = []
    measurement = run_best(lambda: calls.append(1), repeats=3, mode="min")
    assert len(calls) == 3
    assert len(measurement.samples) == 3
    assert measurement.best == min(measurement.samples)


def test_run_best_max_mode_paper_2d_protocol():
    """Five runs, maximum performance reported (Sec. VI)."""
    counter = {"n": 0}

    def work():
        counter["n"] += 1
        return counter["n"]

    measurement = run_best(
        work, repeats=5, mode="max", metric=lambda elapsed, result: float(result)
    )
    assert measurement.best == 5.0  # max of 1..5
    assert measurement.samples == (1.0, 2.0, 3.0, 4.0, 5.0)
    assert measurement.result == 5


def test_deterministic_metric_has_zero_spread():
    measurement = run_best(
        lambda: 7, repeats=4, mode="max", metric=lambda e, r: float(r)
    )
    assert measurement.spread == 0.0


def test_spread_reflects_variation():
    values = iter([1.0, 2.0, 4.0])
    measurement = run_best(
        lambda: next(values), repeats=3, mode="max", metric=lambda e, r: r
    )
    assert measurement.spread == pytest.approx((4.0 - 1.0) / 4.0)


def test_validation():
    with pytest.raises(ValidationError):
        run_best(lambda: None, repeats=0)
    with pytest.raises(ValidationError):
        run_best(lambda: None, repeats=1, mode="median")


def test_measurement_zero_best_spread():
    m = Measurement(best=0.0, samples=(0.0, 0.0), mode="max")
    assert m.spread == 0.0


def test_run_best_with_virtual_time_model():
    """On the deterministic cost model, best-of-N is a no-op: every
    repetition produces the identical figure."""
    import numpy as np

    from repro.hardware import machine
    from repro.perf import stencil2d_glups

    m = machine("a64fx")
    measurement = run_best(
        lambda: stencil2d_glups(m, np.float32, "simd", 48),
        repeats=5,
        mode="max",
        metric=lambda elapsed, result: result,
    )
    assert measurement.spread == 0.0
    assert measurement.best == pytest.approx(61.875)
