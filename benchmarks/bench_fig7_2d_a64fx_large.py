"""Fig 7: 2D stencil on A64FX with the enlarged 8192x196608 grid.

The paper grew the grid 1.5x to test whether HPX was starved for
parallelism; it was not -- "there are no performance benefits in
increasing grid size".  The harness checks rate-invariance and the HBM
capacity argument (two grids of the large size still fit in 32 GB).
"""

import numpy as np
import pytest

from repro.exhibits import render_fig_2d
from repro.hardware import machine
from repro.perf.cost import PAPER_GRID_2D, PAPER_GRID_2D_LARGE, stencil2d_time

MACHINE = "a64fx"


def test_fig7_exhibit(benchmark, save_exhibit):
    text = benchmark(render_fig_2d, MACHINE, PAPER_GRID_2D_LARGE)
    assert "196608" in text
    save_exhibit("fig7_2d_a64fx_large", text)


def test_fig7_no_benefit_from_larger_grid(benchmark):
    """GLUP/s rate identical across grid sizes -> time scales with LUPs."""
    m = machine(MACHINE)

    def rates():
        out = {}
        for grid in (PAPER_GRID_2D, PAPER_GRID_2D_LARGE):
            ny, nx = grid
            lups = (ny - 2) * (nx - 2) * 100
            out[grid] = lups / stencil2d_time(m, np.float32, "simd", 48, grid=grid)
        return out

    result = benchmark(rates)
    small, large = result[PAPER_GRID_2D], result[PAPER_GRID_2D_LARGE]
    assert large == pytest.approx(small, rel=1e-9)


def test_fig7_hbm_capacity_argument():
    """Sec. VII-B: the 131072 grid needs ~9 GB per buffer (doubles, two
    buffers = 18 GB), capping the largest testable size at ~1.5x."""
    ny, nx = PAPER_GRID_2D
    buffer_gb = ny * nx * 8 / 2**30
    assert buffer_gb == pytest.approx(8.0, rel=0.01)  # "9GB worth of DRAM"
    ny_l, nx_l = PAPER_GRID_2D_LARGE
    two_large_buffers_gb = 2 * ny_l * nx_l * 8 / 2**30
    assert two_large_buffers_gb < 32.0  # still fits HBM
    assert 2 * (ny_l * 1.5) * nx_l * 8 / 2**30 > 32.0  # another 1.5x would not
