"""Unit tests for the sparse vector clocks behind the race detector."""

from repro.analysis import VectorClock


def test_fresh_clock_is_empty():
    clock = VectorClock()
    assert len(clock) == 0
    assert clock.get(3) == 0
    assert clock[3] == 0


def test_tick_advances_own_component_only():
    clock = VectorClock()
    clock.tick(1)
    clock.tick(1)
    clock.tick(2)
    assert clock[1] == 2
    assert clock[2] == 1
    assert clock[7] == 0


def test_join_is_componentwise_max():
    a = VectorClock()
    a.tick(1)
    a.tick(1)
    b = VectorClock()
    b.tick(2)
    a.join(b)
    assert a[1] == 2 and a[2] == 1
    # Join must not mutate the argument.
    assert b[1] == 0 and b[2] == 1


def test_copy_is_independent():
    a = VectorClock()
    a.tick(1)
    b = a.copy()
    b.tick(1)
    assert a[1] == 1 and b[1] == 2


def test_epoch_and_dominates():
    a = VectorClock()
    a.tick(1)
    epoch = a.epoch(1)
    assert epoch == (1, 1)

    b = VectorClock()
    assert not b.dominates(epoch)
    b.join(a)
    assert b.dominates(epoch)
    # A later epoch from the same thread is not dominated.
    a.tick(1)
    assert not b.dominates(a.epoch(1))


def test_ordering_and_equality():
    a = VectorClock()
    a.tick(1)
    b = a.copy()
    assert a == b
    b.tick(2)
    assert a <= b
    assert not b <= a
    assert a != b


def test_zero_entries_do_not_break_equality():
    a = VectorClock()
    b = VectorClock()
    b.join(a)
    assert a == b
