"""Tests for Locality identity and the pool/runtime wiring."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Runtime
from repro.runtime.locality import Locality
from repro.runtime.threads.pool import ThreadPool


def test_locality_installs_pool_backrefs():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        loc = rt.localities[1]
        assert loc.pool.locality is loc
        assert loc.pool.runtime is rt
        assert loc.n_workers == 1


def test_locality_equality_is_per_runtime():
    with Runtime(n_localities=1, workers_per_locality=1) as rt_a:
        a0 = rt_a.localities[0]
        assert a0 == a0
        assert hash(a0) == hash(rt_a.localities[0])
    with Runtime(n_localities=1, workers_per_locality=1) as rt_b:
        # Same id, different runtime: not equal.
        assert rt_b.localities[0] != a0


def test_negative_locality_id_rejected():
    pool = ThreadPool(1)

    class FakeRuntime:
        pass

    with pytest.raises(RuntimeStateError):
        Locality(-1, pool, FakeRuntime())


def test_machine_pinning_maps_workers_to_cores():
    with Runtime(machine="xeon-e5-2660v3", workers_per_locality=4) as rt:
        pool = rt.localities[0].pool
        # Compact pinning on 2-way SMT: physical PUs 0, 2, 4, 6.
        assert [w.core_id for w in pool.workers] == [0, 2, 4, 6]


def test_unpinned_runtime_has_no_core_ids():
    from repro.config import Config

    cfg = Config(threads__pin=False)
    with Runtime(machine="a64fx", workers_per_locality=4, config=cfg) as rt:
        assert all(w.core_id is None for w in rt.localities[0].pool.workers)


def test_scheduler_choice_reaches_pools():
    from repro.config import Config

    cfg = Config(threads__scheduler="static")
    with Runtime(workers_per_locality=2, config=cfg) as rt:
        assert rt.localities[0].pool.scheduler.name == "static"
