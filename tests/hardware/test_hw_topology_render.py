"""Tests for the hwloc-ls-style renderer."""

from repro.hardware import machine
from repro.hardware.topology_render import render_machine, render_pinning


def test_render_xeon_structure():
    text = render_machine(machine("xeon-e5-2660v3"))
    assert text.count("Package P#") == 2
    assert text.count("NUMANode N#") == 2
    assert text.count("Core C#") == 20
    assert "L3 (25MB, shared by 10 cores, 64B lines)" in text
    assert "PU#0 PU#1" in text  # SMT pair on core 0


def test_render_a64fx_structure():
    text = render_machine(machine("a64fx"))
    assert text.count("NUMANode N#") == 4  # CMGs
    assert text.count("Core C#") == 48
    assert "256B lines" in text
    assert "L2 (8MB, shared by 12 cores" in text


def test_render_without_pus():
    text = render_machine(machine("kunpeng916"), show_pus=False)
    assert "PU#" not in text
    assert text.count("Core C#") == 64


def test_bandwidth_shown_per_domain():
    text = render_machine(machine("thunderx2"))
    assert "118 GB/s" in text  # saturated 32-core domain


def test_render_pinning_compact():
    m = machine("kunpeng916")
    text = render_pinning(m, m.topology.pin_compact(40))
    assert "40 worker(s) pinned across 3 NUMA domain(s)" in text
    assert "16/16" in text  # two full domains
    assert "8/16" in text  # the partial one (the Fig 5 dip!)


def test_render_pinning_scatter():
    m = machine("a64fx")
    text = render_pinning(m, m.topology.pin_scatter(8))
    assert "across 4 NUMA domain(s)" in text
    assert text.count("2/12") == 4
