"""Overload protection: admission control, credits, breakers, phi-accrual.

Message-driven runtimes fail ugly under overload: a sender can generate
parcels far faster than a slow locality drains them, and an unprotected
port just queues unboundedly until memory or tail latency blows up --
the failure mode task-based runtimes hit on cheap cores with slow
interconnects.  This module is the substrate the multi-tenant job
service lands on; it layers four mechanisms over the parcelport, all
clocked on the virtual clock so a protected run is as deterministic as
an unprotected one:

* **Admission control with priority-aware shedding** -- LOW-priority
  parcels toward a destination whose backlog exceeds
  ``overload.max_queue_depth`` (or whose credits ran dry) are *deferred*
  with seeded exponential backoff, and shed to the bounded dead-letter
  queue with a :class:`~repro.errors.ParcelShedError` (carrying a
  retry-after hint) once ``overload.defer_max`` deferrals are spent.
* **Credit-based flow control** -- each destination grants
  ``overload.credits`` send credits; a NORMAL/HIGH parcel with no credit
  waits in a per-destination stall queue and is released, oldest first,
  when an ack (handler completion) returns a credit.  A storm toward one
  slow locality therefore throttles *at the sender* instead of flooding
  the destination's queue.
* **Per-destination circuit breakers** -- ``overload.breaker_threshold``
  consecutive dead-letters open the breaker (fail-fast sheds, stalled
  parcels purged, destination escalated into
  :attr:`~repro.runtime.parcel.parcelport.Parcelport.suspected_dead` so
  the PR-4 recovery drivers react to breaker state); after
  ``overload.breaker_reset_s`` virtual seconds one half-open probe is
  allowed through, and its ack closes the breaker again.
* **A phi-accrual failure detector** -- per-peer inter-arrival windows
  of ack times yield a continuous suspicion level
  ``phi = elapsed / (mean * ln 10)`` (exponential-CDF variant).
  Crossing ``overload.phi_throttle`` halves the peer's credit ceiling,
  ``overload.phi_suspect`` opens its breaker, and
  ``overload.phi_confirm`` confirms the peer dead -- replacing the
  single hard-coded ack-timeout escalation with a graded verdict.

Every decision is counter-visible (``/overload{...}``, ``/breaker{...}``
and ``/phi{...}`` perfcounters) and emits a trace event through
:attr:`OverloadController.event_hook` when a tracer is attached.  See
``docs/resilience.md`` ("Overload & graceful degradation") for the state
machines and tuning guidance.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional, Set

from ..runtime.threads.hpx_thread import ThreadPriority

if TYPE_CHECKING:  # pragma: no cover
    from ..config import Config
    from ..runtime.parcel.parcel import Parcel
    from ..runtime.runtime import Runtime

__all__ = [
    "OverloadPolicy",
    "CircuitBreaker",
    "PhiAccrualDetector",
    "OverloadController",
]

_LN10 = math.log(10.0)

#: Overload event hook signature: (kind, virtual_time, parcel_id, args).
EventHook = Callable[[str, float, Optional[int], dict], None]


@dataclass(frozen=True)
class OverloadPolicy:
    """Frozen snapshot of the ``overload.*`` configuration knobs."""

    credits: int = 32
    max_inflight: int = 64
    max_queue_depth: int = 128
    defer_base_s: float = 1e-4
    defer_max: int = 3
    breaker_threshold: int = 3
    breaker_reset_s: float = 1e-3
    phi_window: int = 32
    phi_throttle: float = 3.0
    phi_suspect: float = 8.0
    phi_confirm: float = 16.0
    seed: int = 0

    @classmethod
    def from_config(cls, config: "Config") -> "OverloadPolicy":
        return cls(
            credits=config.get_int("overload.credits"),
            max_inflight=config.get_int("overload.max_inflight"),
            max_queue_depth=config.get_int("overload.max_queue_depth"),
            defer_base_s=config.get_float("overload.defer_base_s"),
            defer_max=config.get_int("overload.defer_max"),
            breaker_threshold=config.get_int("overload.breaker_threshold"),
            breaker_reset_s=config.get_float("overload.breaker_reset_s"),
            phi_window=config.get_int("overload.phi_window"),
            phi_throttle=config.get_float("overload.phi_throttle"),
            phi_suspect=config.get_float("overload.phi_suspect"),
            phi_confirm=config.get_float("overload.phi_confirm"),
            seed=config.get_int("seed"),
        )


class CircuitBreaker:
    """Closed -> open -> half-open breaker for one destination locality.

    ``record_failure`` counts *consecutive* dead-letters; at
    ``threshold`` the breaker opens and :meth:`allow` rejects every send
    until ``reset_s`` virtual seconds pass, at which point exactly one
    probe is let through (half-open).  The probe's ack closes the
    breaker; another failure re-opens it with a fresh reset window.
    """

    __slots__ = ("threshold", "reset_s", "state", "failures", "opened_at", "probing")

    def __init__(self, threshold: int, reset_s: float) -> None:
        self.threshold = threshold
        self.reset_s = reset_s
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False

    def allow(self, now: float) -> str:
        """Gate one send: ``"send"``, ``"probe"``, or ``"reject"``."""
        if self.state == "closed":
            return "send"
        if self.state == "open" and now >= self.opened_at + self.reset_s:
            self.state = "half-open"
            self.probing = True
            return "probe"
        if self.state == "half-open" and not self.probing:
            self.probing = True
            return "probe"
        return "reject"

    def retry_after(self, now: float) -> float:
        """Virtual seconds until the next probe window (retry hint)."""
        return max(0.0, self.opened_at + self.reset_s - now)

    def record_success(self) -> bool:
        """An ack arrived; True when this transition closed the breaker."""
        self.failures = 0
        self.probing = False
        if self.state != "closed":
            self.state = "closed"
            return True
        return False

    def record_failure(self, now: float) -> bool:
        """A dead-letter occurred; True when this transition opened it."""
        self.failures += 1
        self.probing = False
        if self.state == "half-open" or (
            self.state == "closed" and self.failures >= self.threshold
        ):
            self.state = "open"
            self.opened_at = now
            return True
        return False

    def force_open(self, now: float) -> bool:
        """Open regardless of the failure count (phi escalation)."""
        if self.state == "open":
            return False
        self.state = "open"
        self.opened_at = now
        self.probing = False
        return True


class PhiAccrualDetector:
    """Suspicion levels from per-peer ack inter-arrival windows.

    Heartbeats are handler-completion acks on the virtual clock.  With a
    window of inter-arrival samples of mean ``m`` and ``elapsed``
    virtual seconds since the last ack, the suspicion is
    ``phi = elapsed / (m * ln 10)`` -- the exponential-distribution
    variant of Hayashibara's phi-accrual detector, i.e.
    ``-log10 P(next ack still pending)``.  ``phi = 1`` means the silence
    is 10x less likely than expected, ``phi = 2`` 100x, and so on.
    """

    __slots__ = ("window", "_samples", "_last")

    def __init__(self, window: int) -> None:
        self.window = window
        self._samples: Dict[int, Deque[float]] = {}
        self._last: Dict[int, float] = {}

    def heartbeat(self, peer: int, now: float) -> None:
        """Record one ack from ``peer`` at virtual time ``now``."""
        last = self._last.get(peer)
        if last is None:
            self._last[peer] = now
            return
        if now <= last:
            return
        self._samples.setdefault(peer, deque(maxlen=self.window)).append(now - last)
        self._last[peer] = now

    def phi(self, peer: int, now: float) -> float:
        """Current suspicion of ``peer``; 0.0 before two acks arrived."""
        samples = self._samples.get(peer)
        if not samples:
            return 0.0
        elapsed = now - self._last[peer]
        if elapsed <= 0.0:
            return 0.0
        mean = max(sum(samples) / len(samples), 1e-12)
        return elapsed / (mean * _LN10)

    def suspicion(self, now: float) -> float:
        """Max suspicion across all peers (the ``/phi`` perfcounter)."""
        return max((self.phi(peer, now) for peer in self._last), default=0.0)


class OverloadController:
    """Per-runtime admission, credit, breaker, and phi bookkeeping.

    Installed on the parcelport as ``port.overload`` when
    ``overload.enabled`` is set; :meth:`admit` gates every first-time
    ``send`` (retransmissions and credit-holding resumes bypass it), and
    the runtime routes handler completions to :meth:`on_ack` and
    dead-letters to :meth:`on_parcel_failed`.
    """

    def __init__(self, runtime: "Runtime", policy: OverloadPolicy | None = None) -> None:
        self._runtime = runtime
        self.policy = policy or OverloadPolicy.from_config(runtime.config)
        self.phi = PhiAccrualDetector(self.policy.phi_window)
        self._credits: Dict[int, int] = {}
        self._inflight: Dict[int, int] = {}
        self._stalled: Dict[int, Deque["Parcel"]] = {}
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._probe_ids: Set[int] = set()
        #: Stable parcel -> jitter-sequence mapping (FaultInjector idiom):
        #: the deferral backoff is a pure function of (seed, seq, deferral).
        self._defer_seq: Dict[int, int] = {}
        # Decision counters (perfcounter sources).
        self.parcels_shed = 0
        self.parcels_deferred = 0
        self.parcels_completed = 0
        self.credit_stalls = 0
        self.credit_resumes = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.breaker_probes = 0
        #: Patched by an attached Tracer to turn decisions into events.
        self.event_hook: EventHook | None = None

    # Introspection -------------------------------------------------------------
    def stalled_count(self, destination: int | None = None) -> int:
        """Parcels currently parked awaiting a send credit."""
        if destination is not None:
            queue = self._stalled.get(destination)
            return len(queue) if queue else 0
        return sum(len(queue) for queue in self._stalled.values())

    def stalled_destinations(self) -> list[int]:
        return sorted(d for d, q in self._stalled.items() if q)

    def credits_available(self, destination: int) -> int:
        return self._credits.get(destination, self._base_credits())

    def inflight(self, destination: int) -> int:
        return self._inflight.get(destination, 0)

    def breaker(self, destination: int) -> CircuitBreaker:
        breaker = self._breakers.get(destination)
        if breaker is None:
            breaker = CircuitBreaker(
                self.policy.breaker_threshold, self.policy.breaker_reset_s
            )
            self._breakers[destination] = breaker
        return breaker

    def _base_credits(self) -> int:
        return min(self.policy.credits, self.policy.max_inflight)

    def _ceiling(self, destination: int, now: float) -> int:
        """Credit ceiling, halved while phi says ``throttle`` (or worse)."""
        base = self._base_credits()
        if self.phi.phi(destination, now) >= self.policy.phi_throttle:
            return max(1, base // 2)
        return base

    def _emit(self, kind: str, now: float, parcel: "Parcel | None", **args: object) -> None:
        hook = self.event_hook
        if hook is not None:
            hook(kind, now, None if parcel is None else parcel.parcel_id, args)

    # Admission -----------------------------------------------------------------
    def admit(self, parcel: "Parcel") -> tuple[str, tuple[str, float] | None]:
        """Gate one first-time send.

        Returns ``("send", None)``, ``("stall", None)``, ``("defer",
        None)``, or ``("shed", (reason, retry_after))``.  Stalled parcels
        are parked here and resumed on ack; deferred parcels are
        re-submitted by the runtime's resume scheduler.
        """
        destination = self._runtime._destination_of(parcel)
        if destination == parcel.source_locality:
            return ("send", None)  # no wire, no flow control
        now = parcel.send_time

        # Phi escalation first: a silent peer we are owed acks by may be
        # throttled, suspected (breaker opens), or confirmed dead.
        if self._inflight.get(destination, 0) > 0:
            phi = self.phi.phi(destination, now)
            if phi >= self.policy.phi_confirm:
                port = self._runtime.parcelport
                if destination not in port.suspected_dead:
                    port.suspected_dead.add(destination)
                    self._emit("phi_confirm", now, parcel, dest=destination, phi=phi)
                self._open_breaker(destination, now, f"phi={phi:.2f} confirmed dead")
            elif phi >= self.policy.phi_suspect:
                self._open_breaker(destination, now, f"phi={phi:.2f} suspect")

        breaker = self.breaker(destination)
        gate = breaker.allow(now)
        if gate == "reject":
            retry_after = breaker.retry_after(now)
            self.parcels_shed += 1
            self._emit("parcel_shed", now, parcel, dest=destination, reason="breaker-open")
            return ("shed", (f"circuit open to locality {destination}", retry_after))
        if gate == "probe":
            self.breaker_probes += 1
            self._probe_ids.add(parcel.parcel_id)
            self._emit("breaker_probe", now, parcel, dest=destination)
            return ("send", None)  # probes bypass credits (none may be left)

        inflight = self._inflight.get(destination, 0)
        if parcel.priority is ThreadPriority.LOW:
            # Sheddable background traffic: defer (bounded times) instead
            # of stalling, so nothing about a LOW storm queues unboundedly.
            depth = self._runtime.localities[destination].pool.pending()
            credits = self._credits.setdefault(destination, self._base_credits())
            pressed = (
                depth >= self.policy.max_queue_depth
                or inflight >= self.policy.max_inflight
                or credits <= 0
            )
            if pressed:
                delay = self._defer_delay(parcel)
                if parcel.deferrals >= self.policy.defer_max:
                    self.parcels_shed += 1
                    self._emit(
                        "parcel_shed", now, parcel, dest=destination, reason="overloaded"
                    )
                    return (
                        "shed",
                        (
                            f"locality {destination} overloaded (queue depth "
                            f"{depth}, {inflight} in flight) after "
                            f"{parcel.deferrals} deferral(s)",
                            delay,
                        ),
                    )
                parcel.deferrals += 1
                self.parcels_deferred += 1
                self._emit(
                    "parcel_deferred", now, parcel, dest=destination, until=now + delay
                )
                self._runtime._schedule_parcel_resume(parcel, now + delay)
                return ("defer", None)
        else:
            credits = self._credits.setdefault(destination, self._base_credits())
            if credits <= 0 or inflight >= self.policy.max_inflight:
                self._stalled.setdefault(destination, deque()).append(parcel)
                self.credit_stalls += 1
                self._emit("credit_stall", now, parcel, dest=destination)
                return ("stall", None)

        self._credits[destination] = self._credits[destination] - 1
        self._inflight[destination] = inflight + 1
        parcel.holds_credit = True
        return ("send", None)

    def _defer_delay(self, parcel: "Parcel") -> float:
        """Seeded, jittered exponential deferral backoff (deterministic)."""
        seq = self._defer_seq.setdefault(parcel.parcel_id, len(self._defer_seq))
        rng = random.Random(f"{self.policy.seed}:defer:{seq}:{parcel.deferrals}")
        base = self.policy.defer_base_s * (2.0 ** parcel.deferrals)
        return base * (0.75 + 0.5 * rng.random())

    # Completion / failure feedback ---------------------------------------------
    def on_ack(self, parcel: "Parcel", destination: int, now: float) -> None:
        """Handler completion at ``destination``: heartbeat + credit return."""
        if destination == parcel.source_locality:
            return
        self.phi.heartbeat(destination, now)
        breaker = self._breakers.get(destination)
        if breaker is not None and breaker.record_success():
            self.breaker_closes += 1
            self._emit("breaker_close", now, parcel, dest=destination)
            # The probe proved the peer alive; withdraw the suspicion the
            # breaker (or phi) escalated.
            self._runtime.parcelport.suspected_dead.discard(destination)
        if parcel.holds_credit:
            parcel.holds_credit = False
            self.parcels_completed += 1
            self._release(destination, now)
        elif parcel.parcel_id in self._probe_ids:
            self._probe_ids.discard(parcel.parcel_id)
            self.parcels_completed += 1

    def on_parcel_failed(self, parcel: "Parcel", now: float) -> None:
        """A parcel was dead-lettered (retries exhausted): breaker input."""
        destination = parcel.unreachable_destination
        if destination is None:
            destination = self._runtime._destination_of(parcel)
        if parcel.holds_credit:
            parcel.holds_credit = False
            self._release(destination, now)
        self._probe_ids.discard(parcel.parcel_id)
        if self.breaker(destination).record_failure(now):
            self._opened(destination, now)

    def _open_breaker(self, destination: int, now: float, reason: str) -> None:
        if self.breaker(destination).force_open(now):
            self._opened(destination, now, reason)

    def _opened(self, destination: int, now: float, reason: str = "failures") -> None:
        self.breaker_opens += 1
        self._emit("breaker_open", now, None, dest=destination, reason=reason)
        # Breaker state *is* the escalation the recovery drivers watch.
        self._runtime.parcelport.suspected_dead.add(destination)
        self._shed_stalled(
            destination,
            f"circuit opened to locality {destination} while awaiting credit",
            retry_after=self.policy.breaker_reset_s,
        )

    def _release(self, destination: int, now: float) -> None:
        """Return one credit; hand it to the oldest stalled parcel if any."""
        inflight = self._inflight.get(destination, 0)
        if inflight > 0:
            self._inflight[destination] = inflight - 1
        stalled = self._stalled.get(destination)
        if stalled:
            resumed = stalled.popleft()
            resumed.holds_credit = True
            self._inflight[destination] = self._inflight.get(destination, 0) + 1
            self.credit_resumes += 1
            self._emit("credit_resume", now, resumed, dest=destination)
            self._runtime._schedule_parcel_resume(resumed, now)
            return
        ceiling = self._ceiling(destination, now)
        current = self._credits.get(destination, ceiling)
        if current < ceiling:
            self._credits[destination] = current + 1

    def shed_all_stalled(self, reason: str) -> int:
        """Shed every stalled parcel (stall-with-no-progress escape hatch);
        returns how many were shed."""
        total = 0
        for destination in list(self._stalled):
            total += self._shed_stalled(destination, reason, retry_after=0.0)
        return total

    def _shed_stalled(self, destination: int, reason: str, retry_after: float) -> int:
        stalled = self._stalled.get(destination)
        count = 0
        port = self._runtime.parcelport
        while stalled:
            parcel = stalled.popleft()
            self.parcels_shed += 1
            count += 1
            self._emit(
                "parcel_shed", parcel.send_time, parcel,
                dest=destination, reason="stall-purged",
            )
            port._shed(parcel, reason, retry_after=retry_after)
        return count
