"""Unit tests for the execution tracer."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Runtime, async_
from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.trace import Tracer


def test_records_task_fields():
    pool = ThreadPool(2, name="p")
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(2.0), description="heavy")
        pool.run_all()
    assert len(tracer.records) == 1
    record = tracer.records[0]
    assert record.description == "heavy"
    assert record.duration == pytest.approx(2.0)
    assert record.pool == "p"


def test_detach_restores_pool():
    pool = ThreadPool(1)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: None)
        pool.run_all()
    pool.submit(lambda: None)
    pool.run_all()
    assert len(tracer.records) == 1  # post-detach task not traced


def test_attach_to_runtime_traces_all_localities():
    tracer = Tracer()
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        with tracer.attach(rt):
            rt.run(lambda: rt.async_at(1, abs, -1).get())
    pools = {r.pool for r in tracer.records}
    assert pools == {"locality-0", "locality-1"}


def test_attach_rejects_other_objects():
    with pytest.raises(RuntimeStateError):
        with Tracer().attach(object()):
            pass


def test_by_worker_lanes_sorted():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(6):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    lanes = tracer.by_worker()
    assert len(lanes) == 2
    for lane in lanes.values():
        starts = [r.start_time for r in lane]
        assert starts == sorted(starts)


def test_busy_fraction_full_when_balanced():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(4):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    assert tracer.busy_fraction() == pytest.approx(1.0)


def test_busy_fraction_half_when_one_worker_idle():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(4.0), worker=0)
        pool.run_all()
    assert tracer.busy_fraction() == pytest.approx(1.0)  # one lane only
    # Force both lanes into the picture:
    with tracer.attach(pool):
        pool.submit(lambda: None, worker=1)
        pool.run_all()
    assert tracer.busy_fraction() < 0.6


def test_queue_delay_measured():
    pool = ThreadPool(1)
    tracer = Tracer()
    with tracer.attach(pool):
        pool.submit(lambda: ctx.add_cost(3.0))
        pool.submit(lambda: ctx.add_cost(1.0))  # waits 3s for the worker
        pool.run_all()
    assert tracer.total_queue_delay() == pytest.approx(3.0)


def test_gantt_renders_lanes():
    pool = ThreadPool(2, name="pool")
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(4):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    chart = tracer.render_gantt(width=40)
    assert "pool/w0" in chart and "pool/w1" in chart
    assert "#" in chart
    assert "@" not in chart  # no double-booked workers, ever


def test_gantt_empty():
    assert "no traced tasks" in Tracer().render_gantt()


def test_makespan_matches_pool():
    pool = ThreadPool(2)
    tracer = Tracer()
    with tracer.attach(pool):
        for _ in range(3):
            pool.submit(lambda: ctx.add_cost(1.0))
        pool.run_all()
    assert tracer.makespan == pytest.approx(pool.makespan)
