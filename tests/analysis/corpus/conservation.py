"""Lost update that breaks the work-conservation law.

A producer publishes two work tokens through a channel; two consumers
each take one and credit it to a plain (un-instrumented) completion
ledger with a read-modify-write.  On the default schedule the producer
runs first, both ``get_sync`` calls find a buffered token, neither
consumer ever yields mid-update, and the ledger balances:
``completed == submitted == 2``.

With two preemptions the explorer can park *both* consumers between
their read of ``ledger.completed`` and their write back: consumer one
blocks on the empty channel, consumer two blocks on top of it, then the
producer fulfils both.  Each consumer resumes with its stale snapshot
(``0``) and writes ``1`` -- a lost update.  The race detector is blind
(the ledger is a plain object, no marked accesses), so only the
explorer's conservation-law oracle catches it:
``completed != submitted``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.explore import ExploreApp
from repro.runtime.lco import Channel
from repro.runtime.runtime import Runtime

#: Tokens the producer submits; the invariant checks the ledger
#: credits exactly this many completions.
SUBMITTED = 2


class _Ledger:
    """Deliberately plain: no Component marks, invisible to the race
    detector."""

    def __init__(self) -> None:
        self.completed = 0


def _build(rt: Runtime) -> Callable[[], Any]:
    ledger = _Ledger()
    ch = Channel("work")

    def producer() -> None:
        for _ in range(SUBMITTED):
            ch.set(1)

    def consumer() -> None:
        credit = ledger.completed  # stale after a mid-update preemption
        credit += ch.get_sync()
        ledger.completed = credit

    def job() -> int:
        pool = rt.localities[0].pool
        futures = [
            pool.submit(producer, description="producer"),
            pool.submit(consumer, description="consumer-1"),
            pool.submit(consumer, description="consumer-2"),
        ]
        for f in futures:
            f.get()
        return ledger.completed

    return job


def _invariant(rt: Runtime, result: Any) -> str | None:
    if result != SUBMITTED:
        return (
            f"conservation law violated: completed {result} != "
            f"submitted {SUBMITTED}"
        )
    return None


def make_app() -> ExploreApp:
    return ExploreApp(name="corpus/conservation", build=_build,
                      n_localities=1, workers_per_locality=1,
                      invariant=_invariant)
