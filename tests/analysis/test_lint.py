"""The repro-specific static lint pass: rules, escape hatch, JSON mode."""

import json

from repro.analysis.lint import (
    Finding,
    filter_findings,
    fix_source,
    lint_paths,
    lint_source,
    main,
)

# Fake paths: model rules (PX1xx/2xx/3xx) apply only inside a "repro"
# package directory; generic rules (PX4xx/5xx/6xx) apply everywhere.
IN_REPRO = "src/repro/fake_module.py"
OUTSIDE = "scripts/fake_script.py"


def codes(findings):
    return [f.code for f in findings]


# PX000 ----------------------------------------------------------------------
def test_syntax_error_reported_as_px000():
    found = lint_source("def broken(:\n", IN_REPRO)
    assert codes(found) == ["PX000"]


# PX101 ----------------------------------------------------------------------
def test_wall_clock_flagged_inside_repro():
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert "PX101" in codes(lint_source(src, IN_REPRO))


def test_sleep_and_datetime_now_flagged():
    src = (
        "import time\nimport datetime\n\n"
        "def f():\n"
        "    time.sleep(1)\n"
        "    return datetime.datetime.now()\n"
    )
    assert codes(lint_source(src, IN_REPRO)).count("PX101") == 2


def test_wall_clock_not_flagged_outside_repro():
    src = "import time\n\ndef f():\n    return time.perf_counter()\n"
    assert "PX101" not in codes(lint_source(src, OUTSIDE))


# PX102 ----------------------------------------------------------------------
def test_unseeded_random_flagged():
    src = "import random\n\ndef f():\n    return random.random()\n"
    assert "PX102" in codes(lint_source(src, IN_REPRO))


def test_seeded_random_instance_allowed():
    src = "import random\n\ndef f():\n    return random.Random(42).random()\n"
    assert "PX102" not in codes(lint_source(src, IN_REPRO))


def test_unseeded_random_instance_flagged():
    src = "import random\n\ndef f():\n    return random.Random()\n"
    assert "PX102" in codes(lint_source(src, IN_REPRO))


# PX201 ----------------------------------------------------------------------
def test_threading_import_flagged():
    assert "PX201" in codes(lint_source("import threading\n", IN_REPRO))


def test_concurrent_futures_from_import_flagged():
    src = "from concurrent.futures import ThreadPoolExecutor as TPE\n"
    found = lint_source(src, IN_REPRO)
    assert "PX201" in codes(found)


# PX301 ----------------------------------------------------------------------
def test_blocking_get_in_component_action_flagged():
    src = (
        "from repro.runtime.agas.component import Component\n\n"
        "class Thing(Component):\n"
        "    def handler(self, fut):\n"
        "        return fut.get()\n"
    )
    assert "PX301" in codes(lint_source(src, IN_REPRO))


def test_private_methods_and_plain_classes_not_flagged():
    src = (
        "from repro.runtime.agas.component import Component\n\n"
        "class Thing(Component):\n"
        "    def _helper(self, fut):\n"
        "        return fut.get()\n\n"
        "class NotAComponent:\n"
        "    def handler(self, fut):\n"
        "        return fut.get()\n"
    )
    assert "PX301" not in codes(lint_source(src, IN_REPRO))


def test_get_with_timeout_not_flagged():
    src = (
        "from repro.runtime.agas.component import Component\n\n"
        "class Thing(Component):\n"
        "    def handler(self, fut):\n"
        "        return fut.get(timeout=1.0)\n"
    )
    assert "PX301" not in codes(lint_source(src, IN_REPRO))


# PX401 ----------------------------------------------------------------------
def test_set_after_retirement_flagged():
    src = (
        "def f(promise):\n"
        "    promise.break_promise()\n"
        "    promise.set_value(1)\n"
    )
    assert "PX401" in codes(lint_source(src, OUTSIDE))


def test_set_before_retirement_allowed():
    src = (
        "def f(promise):\n"
        "    promise.set_value(1)\n"
        "    promise.break_promise()\n"
    )
    assert "PX401" not in codes(lint_source(src, OUTSIDE))


# PX501 ----------------------------------------------------------------------
def test_mutable_default_flagged():
    src = "def f(items=[]):\n    return items\n"
    assert "PX501" in codes(lint_source(src, OUTSIDE))


def test_mutable_default_call_flagged():
    src = "def f(table=dict()):\n    return table\n"
    assert "PX501" in codes(lint_source(src, OUTSIDE))


def test_none_default_allowed():
    src = "def f(items=None):\n    return items or []\n"
    assert "PX501" not in codes(lint_source(src, OUTSIDE))


# PX601 ----------------------------------------------------------------------
def test_unused_import_flagged():
    src = "import os\n\nprint('no os here')\n"
    assert "PX601" in codes(lint_source(src, OUTSIDE))


def test_used_import_and_all_export_not_flagged():
    used = "import os\n\nprint(os.sep)\n"
    assert "PX601" not in codes(lint_source(used, OUTSIDE))
    exported = "import os\n\n__all__ = ['os']\n"
    assert "PX601" not in codes(lint_source(exported, OUTSIDE))


# Escape hatch ---------------------------------------------------------------
def test_line_disable_suppresses_only_that_line():
    src = (
        "import time\n\n"
        "def f():\n"
        "    a = time.sleep(1)  # repro-lint: disable=PX101\n"
        "    return time.sleep(2)\n"
    )
    found = lint_source(src, IN_REPRO)
    assert codes(found).count("PX101") == 1
    assert found[0].line == 5


def test_file_disable_suppresses_everywhere():
    src = (
        "# repro-lint: disable-file=PX101\n"
        "import time\n\n"
        "def f():\n"
        "    return time.sleep(1)\n"
    )
    assert "PX101" not in codes(lint_source(src, IN_REPRO))


def test_disable_all_suppresses_every_code():
    src = "def f(items=[]):  # repro-lint: disable=all\n    return items\n"
    assert lint_source(src, OUTSIDE) == []


# Entry point ----------------------------------------------------------------
def test_main_reports_findings_and_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "PX501" in out and "1 finding(s)" in out


def test_main_json_output(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    assert main([str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "PX501"
    assert payload[0]["line"] == 1


def test_main_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("def f(x=None):\n    return x\n")
    assert main([str(good)]) == 0
    assert capsys.readouterr().out == ""


def test_repo_source_tree_is_lint_clean():
    """The blocking CI invariant: ``python -m repro.analysis.lint src``."""
    assert lint_paths(["src"]) == []


def test_finding_render_format():
    finding = Finding(path="a.py", line=3, col=7, code="PX101", message="m")
    assert finding.render() == "a.py:3:7: PX101 m"


# PX302 ----------------------------------------------------------------------
def test_transitive_blocking_get_flagged():
    src = (
        "class C(Component):\n"
        "    def handler(self):\n"
        "        return self._helper()\n"
        "    def _helper(self):\n"
        "        return self._fetch()\n"
        "    def _fetch(self):\n"
        "        return self.future.get()\n"
    )
    found = lint_source(src, IN_REPRO)
    assert "PX302" in codes(found)
    message = next(f for f in found if f.code == "PX302").message
    assert "'_helper'" in message and "'_fetch'" in message


def test_transitive_blocking_through_module_function_flagged():
    src = (
        "def fetch(fut):\n"
        "    return fut.get()\n\n"
        "class C(Component):\n"
        "    def handler(self, fut):\n"
        "        return fetch(fut)\n"
    )
    assert "PX302" in codes(lint_source(src, IN_REPRO))


def test_direct_get_is_px301_not_px302():
    src = (
        "class C(Component):\n"
        "    def handler(self):\n"
        "        return self.future.get()\n"
    )
    found = codes(lint_source(src, IN_REPRO))
    assert "PX301" in found and "PX302" not in found


def test_nonblocking_helper_chain_not_flagged():
    src = (
        "class C(Component):\n"
        "    def handler(self):\n"
        "        return self._helper()\n"
        "    def _helper(self):\n"
        "        return 42\n"
    )
    assert "PX302" not in codes(lint_source(src, IN_REPRO))


# PX801 ----------------------------------------------------------------------
def test_iterating_set_attribute_in_handler_flagged():
    src = (
        "class C(Component):\n"
        "    def __init__(self):\n"
        "        self.gids = set()\n"
        "    def broadcast(self):\n"
        "        for gid in self.gids:\n"
        "            send(gid)\n"
    )
    assert "PX801" in codes(lint_source(src, IN_REPRO))


def test_iterating_handler_populated_dict_flagged():
    src = (
        "class C(Component):\n"
        "    def __init__(self):\n"
        "        self.parts = {}\n"
        "    def register(self, gid, home):\n"
        "        self.parts[gid] = home\n"
        "    def sweep(self):\n"
        "        return [go(g) for g in self.parts]\n"
    )
    assert "PX801" in codes(lint_source(src, IN_REPRO))


def test_sorted_iteration_not_flagged():
    src = (
        "class C(Component):\n"
        "    def __init__(self):\n"
        "        self.gids = set()\n"
        "    def broadcast(self):\n"
        "        for gid in sorted(self.gids):\n"
        "            send(gid)\n"
    )
    assert "PX801" not in codes(lint_source(src, IN_REPRO))


def test_private_method_iteration_not_flagged():
    src = (
        "class C(Component):\n"
        "    def __init__(self):\n"
        "        self.gids = set()\n"
        "    def _internal(self):\n"
        "        for gid in self.gids:\n"
        "            send(gid)\n"
    )
    assert "PX801" not in codes(lint_source(src, IN_REPRO))


# PX811 ----------------------------------------------------------------------
def test_spawned_closure_nonlocal_write_flagged():
    src = (
        "def driver(pool):\n"
        "    count = 0\n"
        "    def work():\n"
        "        nonlocal count\n"
        "        count += 1\n"
        "    pool.submit(work)\n"
    )
    assert "PX811" in codes(lint_source(src, IN_REPRO))


def test_spawned_closure_container_mutation_flagged():
    src = (
        "def driver(pool):\n"
        "    results = []\n"
        "    def work():\n"
        "        results.append(compute())\n"
        "    pool.submit(work)\n"
    )
    assert "PX811" in codes(lint_source(src, IN_REPRO))


def test_spawned_closure_attribute_write_flagged():
    src = (
        "def driver(pool, ledger):\n"
        "    def work():\n"
        "        ledger.completed = ledger.completed + 1\n"
        "    pool.submit(work)\n"
    )
    assert "PX811" in codes(lint_source(src, IN_REPRO))


def test_unspawned_closure_not_flagged():
    src = (
        "def driver():\n"
        "    results = []\n"
        "    def work():\n"
        "        results.append(compute())\n"
        "    work()\n"
        "    return results\n"
    )
    assert "PX811" not in codes(lint_source(src, IN_REPRO))


def test_spawned_closure_channel_publish_allowed():
    src = (
        "def driver(pool, ch):\n"
        "    def work():\n"
        "        ch.set(compute())\n"
        "    pool.submit(work)\n"
    )
    assert "PX811" not in codes(lint_source(src, IN_REPRO))


def test_spawned_closure_local_mutation_allowed():
    src = (
        "def driver(pool):\n"
        "    def work():\n"
        "        acc = []\n"
        "        acc.append(1)\n"
        "        return acc\n"
        "    pool.submit(work)\n"
    )
    assert "PX811" not in codes(lint_source(src, IN_REPRO))


def test_px811_not_applied_outside_repro():
    src = (
        "def driver(pool):\n"
        "    results = []\n"
        "    def work():\n"
        "        results.append(compute())\n"
        "    pool.submit(work)\n"
    )
    assert "PX811" not in codes(lint_source(src, OUTSIDE))


# PX901 ----------------------------------------------------------------------
IN_SERVICE = "src/repro/service/fake_service.py"

_TRY_BARE = "def f():\n    try:\n        work()\n    except:\n        pass\n"
_TRY_SWALLOW = (
    "def f():\n    try:\n        work()\n    except Exception:\n        pass\n"
)


def test_px901_bare_except_in_service_file():
    found = lint_source(_TRY_BARE, IN_SERVICE)
    assert "PX901" in codes(found)
    assert "SystemExit" in found[0].message


def test_px901_swallowed_broad_except_in_service_file():
    assert "PX901" in codes(lint_source(_TRY_SWALLOW, IN_SERVICE))
    swallowed_return = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except BaseException:\n"
        "        return None\n"
    )
    assert "PX901" in codes(lint_source(swallowed_return, IN_SERVICE))
    in_tuple = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except (ValueError, Exception):\n"
        "        ...\n"
    )
    assert "PX901" in codes(lint_source(in_tuple, IN_SERVICE))


def test_px901_handled_or_narrow_excepts_are_fine():
    narrow = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except OSError:\n"
        "        pass\n"
    )
    assert "PX901" not in codes(lint_source(narrow, IN_SERVICE))
    reported = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception as exc:\n"
        "        log(exc)\n"
    )
    assert "PX901" not in codes(lint_source(reported, IN_SERVICE))
    reraised = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        raise\n"
    )
    assert "PX901" not in codes(lint_source(reraised, IN_SERVICE))


def test_px901_applies_inside_component_action_handlers():
    src = (
        "class Thing(Component):\n"
        "    def act(self):\n"
        "        try:\n"
        "            work()\n"
        "        except Exception:\n"
        "            pass\n"
    )
    assert "PX901" in codes(lint_source(src, IN_REPRO))


def test_px901_skips_private_methods_and_plain_repro_code():
    private = (
        "class Thing(Component):\n"
        "    def _cleanup(self):\n"
        "        try:\n"
        "            work()\n"
        "        except Exception:\n"
        "            pass\n"
    )
    assert "PX901" not in codes(lint_source(private, IN_REPRO))
    assert "PX901" not in codes(lint_source(_TRY_SWALLOW, IN_REPRO))
    assert "PX901" not in codes(lint_source(_TRY_SWALLOW, OUTSIDE))


def test_px901_suppressible_inline():
    src = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:  # repro-lint: disable=PX901\n"
        "        pass\n"
    )
    assert "PX901" not in codes(lint_source(src, IN_SERVICE))


# --select / --ignore --------------------------------------------------------
def test_filter_findings_prefix_semantics():
    found = [
        Finding("p", 1, 1, "PX101", "m"),
        Finding("p", 2, 1, "PX102", "m"),
        Finding("p", 3, 1, "PX601", "m"),
    ]
    assert codes(filter_findings(found, select=["PX1"])) == ["PX101", "PX102"]
    assert codes(filter_findings(found, ignore=["PX10"])) == ["PX601"]
    assert codes(filter_findings(found, select=["PX1"], ignore=["PX102"])) == [
        "PX101"
    ]
    assert codes(filter_findings(found)) == ["PX101", "PX102", "PX601"]


def test_main_select_and_ignore(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import os\n\ndef f(x=[]):\n    return x\n")
    assert main([str(target), "--select", "PX5"]) == 1
    assert "PX601" not in capsys.readouterr().out
    assert main([str(target), "--ignore", "PX5,PX6"]) == 0


# --fix ----------------------------------------------------------------------
def test_fix_source_removes_unused_import():
    fixed, count = fix_source("import os\n\nVALUE = 1\n", OUTSIDE)
    assert count == 1
    assert "import os" not in fixed


def test_fix_source_keeps_used_aliases():
    src = "from os.path import join, split\n\nprint(join('a', 'b'))\n"
    fixed, count = fix_source(src, OUTSIDE)
    assert count == 1
    assert "from os.path import join\n" in fixed
    assert "split" not in fixed


def test_fix_source_preserves_asname_and_suppressions():
    src = (
        "import os  # repro-lint: disable=PX601\n"
        "import json as j\n\n"
        "print(j.dumps({}))\n"
    )
    fixed, count = fix_source(src, OUTSIDE)
    assert count == 0
    assert fixed == src


def test_main_fix_rewrites_file(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import os\nimport sys\n\nprint(sys.argv)\n")
    assert main([str(target), "--fix"]) == 0
    out = capsys.readouterr().out
    assert "fixed 1 finding(s)" in out
    assert target.read_text() == "import sys\n\nprint(sys.argv)\n"


def test_fix_respects_ignore_filter(tmp_path):
    target = tmp_path / "mod.py"
    source = "import os\n\nVALUE = 1\n"
    target.write_text(source)
    assert main([str(target), "--fix", "--ignore", "PX601"]) == 0
    assert target.read_text() == source
