"""Tests for convergence-driven Jacobi iteration."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stencil import Jacobi2D, jacobi_dense_solution, max_error


def hot_top(ny, nx):
    field = np.zeros((ny, nx))
    field[0, :] = 1.0
    return field


def test_residual_decreases_monotonically_in_the_tail():
    solver = Jacobi2D(12, 12, np.float64)
    solver.initialize(hot_top(12, 12))
    residuals = []
    for _ in range(6):
        solver.run(50)
        residuals.append(solver.residual())
    assert residuals == sorted(residuals, reverse=True)


def test_residual_zero_for_fixed_point():
    field = hot_top(8, 8)
    solver = Jacobi2D(8, 8, np.float64)
    solver.initialize(jacobi_dense_solution(field))
    assert solver.residual() < 1e-14


def test_run_until_converged_reaches_dense_solution():
    field = hot_top(10, 10)
    solver = Jacobi2D(10, 10, np.float64)
    solver.initialize(field)
    out, steps = solver.run_until_converged(1e-10, check_every=100)
    assert steps > 0
    assert max_error(out, jacobi_dense_solution(field)) < 1e-7


def test_run_until_converged_counts_steps_in_multiples():
    solver = Jacobi2D(8, 8, np.float64)
    solver.initialize(hot_top(8, 8))
    _, steps = solver.run_until_converged(1e-6, check_every=25)
    assert steps % 25 == 0


def test_tighter_tolerance_needs_more_steps():
    def steps_for(tol):
        solver = Jacobi2D(10, 10, np.float64)
        solver.initialize(hot_top(10, 10))
        _, steps = solver.run_until_converged(tol, check_every=10)
        return steps

    assert steps_for(1e-8) > steps_for(1e-4)


def test_max_steps_guard():
    solver = Jacobi2D(16, 16, np.float64)
    solver.initialize(hot_top(16, 16))
    with pytest.raises(ValidationError, match="no convergence"):
        solver.run_until_converged(1e-15, check_every=10, max_steps=20)


def test_validation():
    solver = Jacobi2D(8, 8, np.float64)
    solver.initialize(hot_top(8, 8))
    with pytest.raises(ValidationError):
        solver.run_until_converged(0.0)
    with pytest.raises(ValidationError):
        solver.run_until_converged(1e-3, check_every=0)
    with pytest.raises(ValidationError):
        solver.run_until_converged(1e-3, max_steps=0)
