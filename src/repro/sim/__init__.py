"""Discrete-event simulation kernel.

The runtime executes real Python callables, but *time* is virtual: cores,
memory controllers, and network links are resources whose occupancy is
tracked on a simulated clock.  This package provides the primitives:

* :class:`~repro.sim.clock.VirtualClock` -- a monotonic virtual clock,
* :class:`~repro.sim.events.EventQueue` -- a stable priority queue of
  timestamped events,
* :class:`~repro.sim.engine.SimulationEngine` -- the event loop binding the
  two together.
"""

from .clock import VirtualClock
from .events import Event, EventQueue
from .engine import SimulationEngine

__all__ = ["VirtualClock", "Event", "EventQueue", "SimulationEngine"]
