"""The deterministic virtual-clock backend (the default).

Every locality is a cooperatively-stepped :class:`ThreadPool` in this
process and time is the modelled virtual clock.  This is the mode every
deterministic artefact depends on -- the sanitizers, the schedule
explorer, deterministic replay, fault injection, and the committed
benchmark baselines -- so the backend is deliberately inert: it installs
no hooks and the Runtime's progress and send paths are bit-identical to
what they were before the backend seam existed.
"""

from __future__ import annotations

from .base import ExecutionBackend

__all__ = ["VirtualClockBackend"]


class VirtualClockBackend(ExecutionBackend):
    """All localities in-process, on the virtual clock."""

    name = "virtual"
    distributed = False
