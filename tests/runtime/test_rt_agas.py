"""Unit tests for AGAS: GIDs, resolution, refcounting, migration."""

import pytest

from repro.errors import AgasError, MigrationError, UnknownGidError
from repro.runtime.agas import AgasService, Component, Gid


# Gid --------------------------------------------------------------------------

def test_gid_pack_unpack_roundtrip():
    gid = Gid(msb_locality=3, lsb=12345)
    assert Gid.unpack(gid.pack()) == gid


def test_gid_validation():
    with pytest.raises(AgasError):
        Gid(-1, 1)
    with pytest.raises(AgasError):
        Gid(0, 0)
    with pytest.raises(AgasError):
        Gid.unpack(-1)


def test_gid_ordering_and_hash():
    a, b = Gid(0, 1), Gid(0, 2)
    assert a < b
    assert len({a, b, Gid(0, 1)}) == 2


# Service ------------------------------------------------------------------------

def test_register_and_resolve():
    agas = AgasService(2)
    obj = object()
    gid = agas.register(obj, home=1)
    assert gid.msb_locality == 1
    home, resolved = agas.resolve(gid)
    assert home == 1 and resolved is obj
    assert agas.is_local(gid, 1)
    assert gid in agas


def test_gids_are_unique_per_locality():
    agas = AgasService(2)
    g1 = agas.register(object(), 0)
    g2 = agas.register(object(), 0)
    g3 = agas.register(object(), 1)
    assert len({g1, g2, g3}) == 3


def test_unknown_gid():
    agas = AgasService(1)
    with pytest.raises(UnknownGidError):
        agas.resolve(Gid(0, 999))


def test_invalid_locality():
    agas = AgasService(2)
    with pytest.raises(AgasError):
        agas.register(object(), home=2)


def test_unregister():
    agas = AgasService(1)
    obj = object()
    gid = agas.register(obj, 0)
    assert agas.unregister(gid) is obj
    assert gid not in agas


# Refcounting -----------------------------------------------------------------------

def test_refcount_lifecycle():
    agas = AgasService(1)
    gid = agas.register(object(), 0)
    assert agas.refcount(gid) == 1
    assert agas.incref(gid, 2) == 3
    assert agas.decref(gid) == 2
    assert agas.decref(gid, 2) == 0
    assert gid not in agas


def test_destroy_hook_fires_at_zero():
    agas = AgasService(1)
    destroyed = []
    agas.on_destroy = lambda gid, obj: destroyed.append((gid, obj))
    obj = object()
    gid = agas.register(obj, 0)
    agas.decref(gid)
    assert destroyed == [(gid, obj)]


def test_refcount_underflow_rejected():
    agas = AgasService(1)
    gid = agas.register(object(), 0)
    with pytest.raises(AgasError):
        agas.decref(gid, 2)


def test_refcount_credit_validation():
    agas = AgasService(1)
    gid = agas.register(object(), 0)
    with pytest.raises(AgasError):
        agas.incref(gid, 0)
    with pytest.raises(AgasError):
        agas.decref(gid, 0)


# Migration -------------------------------------------------------------------------

def test_migrate_moves_home_keeps_gid():
    agas = AgasService(3)
    gid = agas.register(object(), 0)
    assert agas.migrate(gid, 2) == 2
    assert agas.home_of(gid) == 2
    assert gid.msb_locality == 0  # the GID itself never changes


def test_migrate_pinned_rejected():
    agas = AgasService(2)
    gid = agas.register(object(), 0)
    agas.pin(gid)
    with pytest.raises(MigrationError):
        agas.migrate(gid, 1)
    agas.unpin(gid)
    assert agas.migrate(gid, 1) == 1


def test_unpin_without_pin_rejected():
    agas = AgasService(1)
    gid = agas.register(object(), 0)
    with pytest.raises(AgasError):
        agas.unpin(gid)


def test_migrate_notifies_component():
    agas = AgasService(2)
    comp = Component()
    gid = agas.register(comp, 0)
    comp.bind(gid, 0)
    agas.migrate(gid, 1)
    assert comp.home == 1


# Component -------------------------------------------------------------------------

def test_component_bind_once():
    comp = Component()
    with pytest.raises(AgasError):
        _ = comp.gid  # unbound
    comp.bind(Gid(0, 1), 0)
    assert comp.gid == Gid(0, 1)
    with pytest.raises(AgasError):
        comp.bind(Gid(0, 2), 0)


def test_component_act_dispatch():
    class Counter(Component):
        def __init__(self):
            super().__init__()
            self.n = 0

        def add(self, k):
            self.n += k
            return self.n

    counter = Counter()
    assert counter.act("add", 5) == 5
    assert counter.act("add", 2) == 7


def test_component_act_rejects_private_and_missing():
    comp = Component()
    with pytest.raises(AgasError):
        comp.act("_secret")
    with pytest.raises(AgasError):
        comp.act("nope")
