"""Unit tests for the roofline model (Eq. 1)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.perf import (
    arithmetic_intensity,
    attainable_performance,
    stencil2d_arithmetic_intensity,
)


def test_paper_ai_values():
    """Sec. V-B: AI = 1/12 LUP/B (float), 1/24 LUP/B (double)."""
    assert stencil2d_arithmetic_intensity(np.float32) == pytest.approx(1 / 12)
    assert stencil2d_arithmetic_intensity(np.float64) == pytest.approx(1 / 24)


def test_cache_blocked_ai_values():
    """Two transfers per update: 1/8 and 1/16 (Sec. VII-B)."""
    assert stencil2d_arithmetic_intensity(np.float32, 2) == pytest.approx(1 / 8)
    assert stencil2d_arithmetic_intensity(np.float64, 2) == pytest.approx(1 / 16)


def test_ai_validation():
    with pytest.raises(ValidationError):
        arithmetic_intensity(0, 1)
    with pytest.raises(ValidationError):
        arithmetic_intensity(1, 0)
    with pytest.raises(ValidationError):
        stencil2d_arithmetic_intensity(np.float32, 0)
    with pytest.raises(ValidationError):
        stencil2d_arithmetic_intensity(np.int64)


def test_attainable_memory_bound():
    # AI x BW = 0.083 x 118 = 9.8 < CP -> memory bound.
    assert attainable_performance(100.0, 1 / 12, 118.0) == pytest.approx(118 / 12)


def test_attainable_compute_bound():
    assert attainable_performance(5.0, 1.0, 118.0) == 5.0


def test_attainable_validation():
    with pytest.raises(ValidationError):
        attainable_performance(0, 1, 1)
    with pytest.raises(ValidationError):
        attainable_performance(1, -1, 1)
    with pytest.raises(ValidationError):
        attainable_performance(1, 1, 0)


def test_roofline_monotone_in_bandwidth():
    perfs = [attainable_performance(1000.0, 1 / 12, bw) for bw in (10, 50, 100, 500)]
    assert perfs == sorted(perfs)


def test_roofline_saturates_at_compute_peak():
    assert attainable_performance(10.0, 1.0, 10**6) == 10.0
