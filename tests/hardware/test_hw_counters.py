"""Unit tests for the PAPI-like counter registers."""

import pytest

from repro.errors import ReproError
from repro.hardware import CounterSet, PAPI_L2_TCM, PAPI_TOT_INS, STALL_BACKEND


def test_counters_start_at_zero():
    counters = CounterSet()
    assert counters.read(PAPI_TOT_INS) == 0


def test_add_accumulates():
    counters = CounterSet()
    counters.add(PAPI_TOT_INS, 100)
    counters.add(PAPI_TOT_INS, 50)
    assert counters.read(PAPI_TOT_INS) == 150


def test_float_increments_round():
    counters = CounterSet()
    counters.add(PAPI_L2_TCM, 1.6)
    assert counters.read(PAPI_L2_TCM) == 2


def test_unknown_counter_rejected():
    counters = CounterSet()
    with pytest.raises(ReproError):
        counters.add("MADE_UP", 1)
    with pytest.raises(ReproError):
        counters.read("MADE_UP")


def test_negative_increment_rejected():
    with pytest.raises(ReproError):
        CounterSet().add(PAPI_TOT_INS, -1)


def test_snapshot_is_frozen():
    counters = CounterSet()
    counters.add(PAPI_TOT_INS, 10)
    snap = counters.snapshot()
    counters.add(PAPI_TOT_INS, 5)
    assert snap.read(PAPI_TOT_INS) == 10
    with pytest.raises(ReproError):
        snap.add(PAPI_TOT_INS, 1)
    with pytest.raises(ReproError):
        snap.reset()


def test_diff_between_snapshots():
    counters = CounterSet()
    counters.add(PAPI_TOT_INS, 10)
    before = counters.snapshot()
    counters.add(PAPI_TOT_INS, 7)
    counters.add(STALL_BACKEND, 3)
    delta = counters.diff(before)
    assert delta.read(PAPI_TOT_INS) == 7
    assert delta.read(STALL_BACKEND) == 3


def test_diff_backwards_rejected():
    a = CounterSet({PAPI_TOT_INS: 10})
    b = CounterSet({PAPI_TOT_INS: 5})
    with pytest.raises(ReproError):
        b.diff(a)


def test_mapping_protocol():
    counters = CounterSet({PAPI_TOT_INS: 3})
    assert counters[PAPI_TOT_INS] == 3
    assert PAPI_TOT_INS in set(counters)
    assert len(counters) == 1


def test_reset():
    counters = CounterSet({PAPI_TOT_INS: 3})
    counters.reset()
    assert counters.read(PAPI_TOT_INS) == 0
