"""Unit tests for the HPX-style performance-counter API."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Runtime, async_, perfcounters
from repro.runtime import context as ctx


def test_threads_count_cumulative(rt):
    rt.run(lambda: [async_(lambda: None) for _ in range(5)] and None)
    rt.progress_all()
    # 5 children + the main task (+ nothing else).
    assert perfcounters.query(rt, "/threads{total}/count/cumulative") == 6.0


def test_per_locality_instance():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        rt.run(lambda: None)
        loc0 = perfcounters.query(rt, "/threads{locality#0/total}/count/cumulative")
        loc1 = perfcounters.query(rt, "/threads{locality#1/total}/count/cumulative")
        assert loc0 >= 1.0
        assert loc1 == 0.0


def test_queue_length(rt):
    pool = rt.localities[0].pool
    pool.submit(lambda: None)
    pool.submit(lambda: None)
    assert perfcounters.query(rt, "/threads{total}/queue/length") == 2.0
    rt.progress_all()
    assert perfcounters.query(rt, "/threads{total}/queue/length") == 0.0


def test_stolen_counter(rt):
    pool = rt.localities[0].pool
    for _ in range(8):
        pool.submit(lambda: ctx.add_cost(1.0), worker=0)
    rt.progress_all()
    assert perfcounters.query(rt, "/threads{total}/count/stolen") > 0


def test_idle_rate_bounds(rt):
    def main():
        async_(lambda: ctx.add_cost(4.0))  # one long task -> 3 idle workers

    rt.run(main)
    rt.progress_all()
    idle = perfcounters.query(rt, "/threads{total}/idle-rate")
    assert 0.5 < idle < 1.0  # 3 of 4 workers idle most of the makespan


def test_idle_rate_counts_delayed_start_as_idle(rt):
    """A task deferred by ready_time leaves the worker idle, not busy --
    the counter reads attributed cost, not end times."""
    pool = rt.localities[0].pool
    pool.submit(lambda: ctx.add_cost(1.0), ready_time=9.0)
    rt.progress_all()
    # 1 busy second out of 4 workers x 10s makespan.
    idle = perfcounters.query(rt, "/threads{total}/idle-rate")
    assert idle == pytest.approx(1.0 - 1.0 / 40.0)


def test_time_average(rt):
    rt.run(lambda: [async_(lambda: ctx.add_cost(2.0)) for _ in range(4)] and None)
    rt.progress_all()
    avg = perfcounters.query(rt, "/threads{total}/time/average")
    assert avg > 0.0


def test_time_average_weights_localities_by_task_count():
    """Regression: the job-wide average used to be the unweighted mean of
    per-locality means.  Three 1s tasks on locality 0 and one 5s task on
    locality 1 must average (3+5)/4 = 2s, not (1+5)/2 = 3s."""
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        for _ in range(3):
            rt.localities[0].pool.submit(lambda: ctx.add_cost(1.0))
        rt.localities[1].pool.submit(lambda: ctx.add_cost(5.0))
        rt.progress_all()
        loc0 = perfcounters.query(rt, "/threads{locality#0/total}/time/average")
        loc1 = perfcounters.query(rt, "/threads{locality#1/total}/time/average")
        assert loc0 == pytest.approx(1.0)
        assert loc1 == pytest.approx(5.0)
        job = perfcounters.query(rt, "/threads{total}/time/average")
        assert job == pytest.approx(2.0)


def test_idle_rate_weights_localities_by_capacity():
    """Regression: job-wide idle-rate used to average per-locality rates,
    hiding imbalance.  Both localities are 0% idle on their *own* clock,
    but the job ends when the slow one does: 8 busy seconds out of
    2 workers x 5s capacity = 20% idle."""
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        for _ in range(3):
            rt.localities[0].pool.submit(lambda: ctx.add_cost(1.0))
        rt.localities[1].pool.submit(lambda: ctx.add_cost(5.0))
        rt.progress_all()
        loc0 = perfcounters.query(rt, "/threads{locality#0/total}/idle-rate")
        loc1 = perfcounters.query(rt, "/threads{locality#1/total}/idle-rate")
        assert loc0 == pytest.approx(0.0)
        assert loc1 == pytest.approx(0.0)
        job = perfcounters.query(rt, "/threads{total}/idle-rate")
        assert job == pytest.approx(0.2)


def test_per_worker_counters():
    from repro.config import Config

    # Static scheduler keeps the work pinned to worker 0.
    config = Config.from_mapping({"threads.scheduler": "static"})
    with Runtime(n_localities=1, workers_per_locality=2, config=config) as rt:
        pool = rt.localities[0].pool
        for _ in range(3):
            pool.submit(lambda: ctx.add_cost(2.0), worker=0)
        rt.progress_all()
        _assert_worker_counters(rt)


def _assert_worker_counters(rt):
    w0_count = perfcounters.query(rt, "/threads{locality#0/worker#0}/count/cumulative")
    w1_count = perfcounters.query(rt, "/threads{locality#0/worker#1}/count/cumulative")
    assert w0_count == 3.0
    assert w1_count == 0.0
    w0_busy = perfcounters.query(rt, "/threads{locality#0/worker#0}/time/busy")
    assert w0_busy == pytest.approx(6.0)
    w0_idle = perfcounters.query(rt, "/threads{locality#0/worker#0}/idle-rate")
    w1_idle = perfcounters.query(rt, "/threads{locality#0/worker#1}/idle-rate")
    assert w0_idle == pytest.approx(0.0)
    assert w1_idle == pytest.approx(1.0)


def test_parcel_counters():
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1) as rt:
        rt.run(lambda: rt.async_at(1, abs, -3).get())
        assert perfcounters.query(rt, "/parcels{total}/count/sent") >= 1.0
        assert perfcounters.query(rt, "/parcels{total}/data/sent") > 0.0


def test_parcel_latency_counters():
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1) as rt:
        rt.run(lambda: [rt.async_at(1, abs, -i).get() for i in range(4)] and None)
        delivered = perfcounters.query(rt, "/parcels{total}/count/delivered")
        sent = perfcounters.query(rt, "/parcels{total}/count/sent")
        assert delivered == sent  # clean network: everything arrives
        latency = perfcounters.query(rt, "/parcels{total}/time/average-latency")
        assert latency > 0.0  # the modelled network is not instantaneous
        in_flight = perfcounters.query(rt, "/parcels{total}/count/retries-in-flight")
        assert in_flight == 0.0


def test_retries_in_flight_settles_to_zero_after_drops():
    from repro.resilience.faults import FaultInjector

    injector = FaultInjector(seed=5, drop_rate=0.3)
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=2,
        workers_per_locality=1,
        fault_injector=injector,
    ) as rt:
        rt.run(lambda: [rt.async_at(1, abs, -i).get() for i in range(10)] and None)
        retried = perfcounters.query(rt, "/parcels{total}/count/retried")
        assert retried > 0.0  # the fault schedule did drop parcels
        # Every scheduled retry has been retransmitted by the end of the run.
        in_flight = perfcounters.query(rt, "/parcels{total}/count/retries-in-flight")
        assert in_flight == 0.0


def test_uptime_is_makespan(rt):
    rt.run(lambda: ctx.add_cost(1.5))
    assert perfcounters.query(rt, "/runtime/uptime") == pytest.approx(rt.makespan)


def test_malformed_paths_rejected(rt):
    for bad in (
        "threads/count",  # no leading slash
        "/threads{locality#x/total}/count/cumulative",
        "/threads{total}/count/bogus",
        "/parcels{locality#0/total}/count/sent",
        "/nonsense/count",
        "/runtime/downtime",
    ):
        with pytest.raises(RuntimeStateError):
            perfcounters.query(rt, bad)


def test_discover_lists_queryable_paths(rt):
    paths = perfcounters.discover(rt)
    assert "/runtime/uptime" in paths
    for path in paths:
        value = perfcounters.query(rt, path)
        assert isinstance(value, float)
