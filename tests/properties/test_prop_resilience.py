"""Property: seeded faults + transparent retry never change the numerics.

For any fault seed, drop rate (within the retryable regime) and step
count, the distributed heat solver on a lossy substrate must produce a
solution bit-identical to the fault-free reference -- losses cost
virtual time, never correctness.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Config
from repro.resilience import FaultInjector
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX = 32
U0 = np.cos(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))
SCHEDULERS = ("work-stealing", "static", "fifo")


def _faulty_solution(seed, drop_rate, steps):
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=2,
        workers_per_locality=1,
        fault_injector=FaultInjector(seed=seed, drop_rate=drop_rate),
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams())
        solver.initialize(U0)
        return solver.run(steps)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_rate=st.floats(min_value=0.0, max_value=0.15),
    steps=st.integers(min_value=1, max_value=20),
)
def test_faulty_run_is_bit_identical_to_reference(seed, drop_rate, steps):
    faulty = _faulty_solution(seed, drop_rate, steps)
    assert np.array_equal(faulty, heat1d_reference(U0, steps, Heat1DParams()))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    drop_rate=st.floats(min_value=0.0, max_value=0.15),
)
def test_same_seed_same_solution_and_no_dead_letters(seed, drop_rate):
    a = _faulty_solution(seed, drop_rate, steps=10)
    b = _faulty_solution(seed, drop_rate, steps=10)
    assert np.array_equal(a, b)


# Permanent crashes + checkpoint restart --------------------------------------


def _resilient_solution(scheduler, crash_locality, crash_time, steps, every):
    """Heat solver on 4 localities with one permanent mid-run crash."""
    injector = None
    if crash_locality is not None:
        injector = FaultInjector(seed=11)
        injector.fail_locality(crash_locality, at=crash_time, permanent=True)
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=4,
        workers_per_locality=1,
        config=Config(threads__scheduler=scheduler),
        fault_injector=injector,
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams(), cost_per_step=1e-3)
        solver.initialize(U0)
        if injector is None:
            return solver.run(steps)
        return solver.run_resilient(steps, checkpoint_every=every)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@settings(max_examples=8, deadline=None)
@given(
    crash_locality=st.integers(min_value=1, max_value=3),
    crash_time=st.floats(min_value=1e-4, max_value=2e-2),
    steps=st.integers(min_value=4, max_value=16),
    every=st.integers(min_value=0, max_value=8),
)
def test_permanent_crash_restart_is_bit_identical(
    scheduler, crash_locality, crash_time, steps, every
):
    """For any crash site/time, epoch length and scheduler, checkpoint
    restart reproduces the fault-free solution bit for bit."""
    clean = _resilient_solution(scheduler, None, 0.0, steps, every)
    crashed = _resilient_solution(scheduler, crash_locality, crash_time, steps, every)
    assert np.array_equal(crashed, clean)
    assert np.array_equal(clean, heat1d_reference(U0, steps, Heat1DParams()))
