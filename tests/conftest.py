"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.registry import machine_names, machine
from repro.runtime.runtime import Runtime


@pytest.fixture
def rt():
    """A small single-locality runtime (4 workers), started and stopped."""
    runtime = Runtime(n_localities=1, workers_per_locality=4)
    runtime.start()
    yield runtime
    runtime.stop()


@pytest.fixture(params=machine_names())
def any_machine(request):
    """Parametrized over all four calibrated machine models."""
    return machine(request.param)
