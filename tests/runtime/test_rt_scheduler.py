"""Unit tests for the three schedulers."""

import pytest

from repro.errors import ConfigError, RuntimeStateError
from repro.runtime.threads.hpx_thread import HpxThread
from repro.runtime.threads.scheduler import (
    FifoScheduler,
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)


def task(name="t"):
    return HpxThread(lambda: None, description=name)


def test_factory():
    assert isinstance(make_scheduler("fifo", 2), FifoScheduler)
    assert isinstance(make_scheduler("static", 2), StaticScheduler)
    assert isinstance(make_scheduler("work-stealing", 2), WorkStealingScheduler)
    with pytest.raises(ConfigError):
        make_scheduler("lottery", 2)


def test_needs_at_least_one_worker():
    with pytest.raises(RuntimeStateError):
        FifoScheduler(0)


def test_fifo_global_order():
    sched = FifoScheduler(2)
    t1, t2, t3 = task("1"), task("2"), task("3")
    for t in (t1, t2, t3):
        sched.push(t)
    assert sched.acquire(0) is t1
    assert sched.acquire(1) is t2
    assert sched.acquire(0) is t3
    assert sched.acquire(0) is None


def test_fifo_len():
    sched = FifoScheduler(1)
    sched.push(task())
    sched.push(task())
    assert len(sched) == 2


def test_static_round_robin_distribution():
    sched = StaticScheduler(2)
    tasks = [task(str(i)) for i in range(4)]
    for t in tasks:
        sched.push(t)
    assert sched.acquire(0) is tasks[0]
    assert sched.acquire(0) is tasks[2]
    assert sched.acquire(1) is tasks[1]
    assert sched.acquire(1) is tasks[3]


def test_static_no_stealing():
    sched = StaticScheduler(2)
    sched.push(task(), worker_hint=0)
    # Worker 1 must idle even though worker 0 has work.
    assert sched.acquire(1) is None
    assert len(sched) == 1


def test_static_honours_hint():
    sched = StaticScheduler(4)
    t = task()
    sched.push(t, worker_hint=3)
    assert sched.acquire(3) is t


def test_work_stealing_own_queue_first():
    sched = WorkStealingScheduler(2)
    own = task("own")
    other = task("other")
    sched.push(own, worker_hint=0)
    sched.push(other, worker_hint=1)
    assert sched.acquire(0) is own
    assert sched.steals == 0


def test_work_stealing_steals_when_dry():
    sched = WorkStealingScheduler(2)
    t = task()
    sched.push(t, worker_hint=1)
    assert sched.acquire(0) is t
    assert sched.steals == 1
    assert t.worker_id == 0


def test_steal_takes_oldest_from_victim_back():
    sched = WorkStealingScheduler(2)
    t1, t2 = task("old"), task("new")
    sched.push(t1, worker_hint=1)
    sched.push(t2, worker_hint=1)
    stolen = sched.acquire(0)
    assert stolen is t2  # back of the victim's deque
    assert sched.acquire(1) is t1  # owner pops front


def test_steal_attempts_limit():
    # Worker 0 may only probe 1 victim (worker 1); work on worker 2 is
    # out of its reach.
    sched = WorkStealingScheduler(3, steal_attempts=1)
    sched.push(task(), worker_hint=2)
    assert sched.acquire(0) is None
    assert sched.acquire(1) is not None  # worker 1 probes worker 2


def test_worker_range_validated():
    sched = WorkStealingScheduler(2)
    with pytest.raises(RuntimeStateError):
        sched.push(task(), worker_hint=5)
    with pytest.raises(RuntimeStateError):
        sched.acquire(-1)


def test_unhinted_push_round_robins():
    sched = WorkStealingScheduler(2)
    t1, t2 = task(), task()
    sched.push(t1)
    sched.push(t2)
    assert sched.acquire(0) is t1
    assert sched.acquire(1) is t2
    assert sched.steals == 0
