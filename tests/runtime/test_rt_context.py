"""Tests for the execution-context stack and errors hierarchy."""

import pytest

from repro import errors
from repro.errors import ReproError, RuntimeStateError
from repro.runtime import context as ctx


class TestContextStack:
    def test_current_outside_runtime_raises(self):
        if ctx.current_or_none() is None:
            with pytest.raises(RuntimeStateError):
                ctx.current()

    def test_push_pop_balance(self):
        frame = ctx.ExecutionContext()
        ctx.push(frame)
        assert ctx.current() is frame
        assert ctx.pop() is frame

    def test_pop_empty_raises(self):
        while ctx.current_or_none() is not None:  # pragma: no cover - safety
            ctx.pop()
        with pytest.raises(RuntimeStateError):
            ctx.pop()

    def test_nesting_order(self):
        outer, inner = ctx.ExecutionContext(), ctx.ExecutionContext()
        ctx.push(outer)
        ctx.push(inner)
        assert ctx.current() is inner
        ctx.pop()
        assert ctx.current() is outer
        ctx.pop()

    def test_add_cost_outside_task_is_noop(self):
        ctx.add_cost(1.0)  # must not raise

    def test_add_cost_negative_rejected(self):
        with pytest.raises(RuntimeStateError):
            ctx.add_cost(-1.0)

    def test_here_without_locality_raises(self):
        ctx.push(ctx.ExecutionContext())
        try:
            with pytest.raises(RuntimeStateError):
                ctx.here()
        finally:
            ctx.pop()

    def test_current_task_none_outside_tasks(self):
        assert ctx.current_task() is None


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        # Warnings must subclass Warning (Python requirement), so the
        # exported hierarchy is: ReproError for raisables, Warning for
        # the rest (e.g. CheckpointCorruptionWarning).
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, (ReproError, Warning)), name

    def test_specific_parentage(self):
        assert issubclass(errors.FutureAlreadySetError, errors.FutureError)
        assert issubclass(errors.BrokenPromiseError, errors.FutureError)
        assert issubclass(errors.UnknownGidError, errors.AgasError)
        assert issubclass(errors.MigrationError, errors.AgasError)
        assert issubclass(errors.SerializationError, errors.ParcelError)
        assert issubclass(errors.PinningError, errors.TopologyError)
        assert issubclass(errors.LaneMismatchError, errors.SimdError)
        assert issubclass(errors.LayoutError, errors.SimdError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise errors.DeadlockError("x")
        with pytest.raises(ReproError):
            raise errors.ChannelClosedError("y")
