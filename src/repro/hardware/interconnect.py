"""Inter-node network model.

The 1D-stencil scaling behaviour (Fig 3) is a story about whether halo
exchange can be hidden under compute.  The model is a classic
latency/bandwidth (Hockney) channel with two quality knobs calibrated per
platform:

* ``injection_efficiency`` -- how much of the link a node can actually
  drive.  The paper found the Kunpeng 916 "not able to exploit the
  capabilities of the InfiniBand network"; its efficiency is far below 1.
* ``congestion_per_node`` -- extra cost per participating node, modelling
  the rising weak-scaling times the paper observed on Kunpeng.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError

__all__ = ["Interconnect"]


@dataclass(frozen=True)
class Interconnect:
    """Point-to-point network channel between localities."""

    name: str
    #: Base one-way small-message latency in seconds.
    latency_s: float
    #: Peak link bandwidth in GB/s.
    bandwidth_gbs: float
    #: Fraction of the link this platform's NIC/PCIe path can drive.
    injection_efficiency: float = 1.0
    #: Additional per-message overhead *per participating node*, seconds.
    #: Models fabric contention that grows with job size (Kunpeng).
    congestion_per_node_s: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise TopologyError("latency must be non-negative")
        if self.bandwidth_gbs <= 0:
            raise TopologyError("bandwidth must be positive")
        if not 0 < self.injection_efficiency <= 1.0:
            raise TopologyError("injection_efficiency must be in (0, 1]")
        if self.congestion_per_node_s < 0:
            raise TopologyError("congestion must be non-negative")

    @property
    def effective_bandwidth_gbs(self) -> float:
        return self.bandwidth_gbs * self.injection_efficiency

    def transfer_time(self, n_bytes: int, n_nodes: int = 2) -> float:
        """One-way time in seconds to move ``n_bytes`` between two nodes,
        inside a job of ``n_nodes`` localities."""
        if n_bytes < 0:
            raise TopologyError("byte count must be non-negative")
        if n_nodes < 1:
            raise TopologyError("node count must be >= 1")
        serialisation = n_bytes / (self.effective_bandwidth_gbs * 1e9)
        return self.latency_s + serialisation + self.congestion_per_node_s * n_nodes

    def rto_estimate(self, n_bytes: int = 256, n_nodes: int = 2) -> float:
        """Retransmission-timeout hint for reliable parcel delivery.

        A sender should wait at least one round trip (data out, ack back)
        plus a latency of slack before declaring a parcel lost; the
        resilience layer uses this as the base ack-timeout when the
        configuration does not pin one explicitly.
        """
        return 2.0 * self.transfer_time(n_bytes, n_nodes) + self.latency_s

    def halo_exchange_time(self, halo_bytes: int, n_nodes: int) -> float:
        """Per-step halo-exchange time for a 1D decomposition.

        Each interior locality exchanges one halo with each neighbour; the
        two directions overlap on a full-duplex link, so the step cost is a
        single :meth:`transfer_time`.
        """
        if n_nodes <= 1:
            return 0.0
        return self.transfer_time(halo_bytes, n_nodes)
