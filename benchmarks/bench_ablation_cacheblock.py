"""Ablation: explicit cache blocking vs the implicit large-cache-line
effect.

The paper observes that A64FX and ThunderX2 get cache-blocking benefits
"without explicit implementation" (~49 % over the 3-transfers roofline)
and that an explicit cache-blocked kernel would achieve the same
2-transfers traffic on *any* machine.  This ablation quantifies what
explicit blocking would buy each machine.
"""

import numpy as np
import pytest

from repro.hardware import machine, machine_names
from repro.perf import expected_peak_2d
from repro.perf.cost import stencil2d_glups, transfers_per_update
from repro.reporting import format_table


def blocking_benefit_table() -> list[list[str]]:
    rows = []
    for name in machine_names():
        m = machine(name)
        n = m.spec.cores_per_node
        implicit = transfers_per_update(m, np.float32, n)
        unblocked = expected_peak_2d(m, np.float32, n, transfers=3)
        blocked = expected_peak_2d(m, np.float32, n, transfers=2)
        achieved = stencil2d_glups(m, np.float32, "simd", n)
        rows.append(
            [
                m.spec.name,
                f"{implicit:.0f}",
                f"{unblocked:.1f}",
                f"{blocked:.1f}",
                f"{achieved:.1f}",
                f"{blocked / unblocked - 1:+.0%}",
            ]
        )
    return rows


def test_blocking_benefit_exhibit(benchmark, save_exhibit):
    rows = benchmark(blocking_benefit_table)
    text = format_table(
        [
            "Machine",
            "implicit transfers/LUP",
            "3-transfer peak (GLUP/s)",
            "2-transfer peak (GLUP/s)",
            "model achieved",
            "blocking headroom",
        ],
        rows,
    )
    save_exhibit("ablation_cacheblock", "Ablation: explicit cache blocking\n" + text)
    assert len(rows) == 4


def test_blocking_headroom_is_exactly_50_percent(benchmark):
    """Going 3 -> 2 transfers is always x1.5 on the roofline."""
    for name in machine_names():
        m = machine(name)
        n = m.spec.cores_per_node
        ratio = benchmark.pedantic(
            lambda m=m, n=n: expected_peak_2d(m, np.float32, n, 2)
            / expected_peak_2d(m, np.float32, n, 3),
            rounds=1,
            iterations=1,
        )
        assert ratio == pytest.approx(1.5)
        break  # benchmark one; assert the rest plainly
    for name in machine_names():
        m = machine(name)
        n = m.spec.cores_per_node
        assert expected_peak_2d(m, np.float32, n, 2) == pytest.approx(
            1.5 * expected_peak_2d(m, np.float32, n, 3)
        )


def test_explicit_blocking_derivation(benchmark, save_exhibit):
    """Mechanistic check of 'a cache blocked version ... reduces the
    number of memory transfers': the blocked sweep order recovers
    ~3 transfers/LUP on rows that overflow the cache."""
    from repro.hardware.cachesim import (
        CacheSim,
        jacobi_blocked_traffic,
        jacobi_row_traffic,
    )

    def derive():
        row_cache = CacheSim(32 * 1024, 64, 8)
        row = jacobi_row_traffic(row_cache, ny=12, nx=4096, sweeps=2)
        tile_cache = CacheSim(32 * 1024, 64, 8)
        tiled = jacobi_blocked_traffic(
            tile_cache, ny=12, nx=4096, tile_nx=256, sweeps=2
        )
        return row, tiled

    row, tiled = benchmark.pedantic(derive, rounds=1, iterations=1)
    save_exhibit(
        "ablation_cacheblock_derivation",
        "Explicit blocking, derived (32 KiB cache, 4096-double rows):\n"
        f"  row-order sweep : {row:.1f} B/LUP  (~5 transfers)\n"
        f"  blocked sweep   : {tiled:.1f} B/LUP  (~3 transfers)\n"
        f"  traffic saved   : {1 - tiled / row:.0%}",
    )
    assert tiled < 0.7 * row


def test_only_large_line_machines_get_it_for_free():
    """Xeon/Kunpeng would need the explicit blocked kernel; A64FX/TX2
    already run at 2 transfers (floats)."""
    free = {
        name: transfers_per_update(machine(name), np.float32, 8) == 2.0
        for name in machine_names()
    }
    assert free == {
        "xeon-e5-2660v3": False,
        "kunpeng916": False,
        "thunderx2": True,
        "a64fx": True,
    }
