"""Ablation: checkpoint overhead vs epoch length ``K``.

The checkpoint/restart claim quantified: coordinated epoch snapshots
cost virtual time through the cost model (``checkpoint.cost_*``), and
that cost trades against recovery time.  Two sweeps over the epoch
length ``K`` on the distributed heat solver:

* **crash-free**: the full overhead of taking epochs nobody needs --
  makespan grows as ``K`` shrinks (more saves);
* **crashed**: a permanent mid-run locality crash forces a restore --
  short epochs lose less recomputation, long epochs re-run more steps,
  so the save-overhead ordering inverts on the recovery side.

Correctness is constant throughout: every run -- crashed or not, any
``K`` -- stays bit-identical to the fault-free reference.  The sweep
uses an exaggerated ``checkpoint.cost_base_s`` so the overhead is
visible at this (test-sized) problem scale.
"""

import numpy as np

from repro.config import Config
from repro.reporting import Series, format_figure
from repro.resilience import FaultInjector
from repro.runtime import perfcounters
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX, STEPS, SEED = 64, 50, 42
INTERVALS = (2, 5, 10, 25)
CRASH_LOCALITY, CRASH_AT = 2, 0.005
#: Exaggerated save cost so the overhead curve is visible at NX=64.
COST = Config(checkpoint__cost_base_s=2e-3, checkpoint__cost_per_byte_s=0.0)
U0 = np.sin(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))

_COUNTER_PATHS = (
    "/checkpoints{total}/count/saved",
    "/checkpoints{total}/count/restored",
    "/checkpoints{total}/count/fallbacks",
    "/checkpoints{total}/data/saved",
    "/checkpoints{total}/time/save",
    "/checkpoints{total}/time/restore",
    "/localities{total}/count/decommissioned",
)


def _run(every: int, crash: bool) -> tuple[float, np.ndarray, dict[str, float]]:
    injector = None
    if crash:
        injector = FaultInjector(seed=SEED)
        injector.fail_locality(CRASH_LOCALITY, at=CRASH_AT, permanent=True)
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=4,
        workers_per_locality=2,
        fault_injector=injector,
        config=COST,
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams(), cost_per_step=1e-3)
        solver.initialize(U0)
        solution = solver.run_resilient(STEPS, checkpoint_every=every)
        counters = {path: perfcounters.query(rt, path) for path in _COUNTER_PATHS}
        return rt.makespan, solution, counters


def checkpoint_sweep() -> dict[str, list[float]]:
    reference = heat1d_reference(U0, STEPS, Heat1DParams())
    times: dict[str, list[float]] = {"crash-free": [], "crashed": []}
    for every in INTERVALS:
        for mode, crash in (("crash-free", False), ("crashed", True)):
            makespan, solution, _ = _run(every, crash)
            assert np.array_equal(solution, reference)  # never costs bits
            times[mode].append(makespan)
    return times


def test_checkpoint_overhead_vs_interval(benchmark, save_exhibit, save_metrics):
    data = benchmark(checkpoint_sweep)
    crash_free = Series("crash-free", list(zip(INTERVALS, data["crash-free"])))
    crashed = Series("crashed + restart", list(zip(INTERVALS, data["crashed"])))
    text = format_figure(
        "Ablation: heat1d time-to-solution vs checkpoint interval K, Xeon x4 "
        "(virtual seconds; one permanent crash in the 'crashed' runs; "
        "solutions bit-identical throughout)",
        [crash_free, crashed],
        xlabel="epoch length K (steps)",
        y_format="{:.3e}",
    )
    save_exhibit("ablation_checkpoint", text)
    # Crash-free: fewer epochs, less overhead -- monotone in K.
    assert data["crash-free"] == sorted(data["crash-free"], reverse=True)
    # A crash is never free: recovery re-runs steps on top of the saves.
    assert all(c > f for c, f in zip(data["crashed"], data["crash-free"]))
    makespan, _, counters = _run(10, crash=True)
    save_metrics(
        "ablation_checkpoint",
        counters=counters,
        meta={
            "intervals": list(INTERVALS),
            "crash_free_makespans": data["crash-free"],
            "crashed_makespans": data["crashed"],
            "crash": f"{CRASH_LOCALITY}@{CRASH_AT}",
            "sampled_run": {"checkpoint_every": 10, "makespan": makespan},
        },
    )


def test_crash_free_epochs_charge_the_clock():
    """The overhead is real virtual time: K=2 pays more saves than K=25."""
    fast, _, few = _run(25, crash=False)
    slow, _, many = _run(2, crash=False)
    assert many["/checkpoints{total}/count/saved"] > few[
        "/checkpoints{total}/count/saved"
    ]
    assert slow > fast
    assert many["/checkpoints{total}/time/save"] > few[
        "/checkpoints{total}/time/save"
    ]
