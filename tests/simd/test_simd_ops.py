"""Tests for the NSIMD-style free-function API."""

import numpy as np
import pytest

from repro.errors import SimdError
from repro.simd import AVX2, NEON, Pack
from repro.simd import ops


def iota(isa=NEON, dtype=np.float32):
    return Pack.iota(isa, dtype)


def test_len():
    assert ops.len_(AVX2, np.float32) == 8
    assert ops.len_(NEON, np.float64) == 2


def test_set1_loadu_storeu_roundtrip():
    buffer = np.arange(8, dtype=np.float32)
    pack = ops.loadu(NEON, buffer, offset=2)
    assert pack.to_array().tolist() == [2.0, 3.0, 4.0, 5.0]
    out = np.zeros(8, dtype=np.float32)
    ops.storeu(out, pack, offset=4)
    assert out[4:].tolist() == [2.0, 3.0, 4.0, 5.0]
    assert ops.set1(NEON, 9.0).to_array().tolist() == [9.0, 9.0]


def test_arithmetic_functions_match_operators():
    a, b = iota(), ops.set1(NEON, 2.0, np.float32)
    assert ops.add(a, b) == a + b
    assert ops.sub(a, b) == a - b
    assert ops.mul(a, b) == a * b
    assert ops.div(a, b) == a / b
    assert ops.neg(a) == -a
    assert ops.fma(a, 2.0, 1.0) == a.fma(2.0, 1.0)


def test_minmax_abs_sqrt():
    a = Pack(NEON, np.array([-4.0, 9.0]))
    assert ops.min_(a, 0.0).to_array().tolist() == [-4.0, 0.0]
    assert ops.max_(a, 0.0).to_array().tolist() == [0.0, 9.0]
    assert ops.sqrt(ops.abs_(a)).to_array().tolist() == [2.0, 3.0]


def test_addv():
    assert ops.addv(iota(AVX2)) == pytest.approx(28.0)


def test_shuffle():
    assert ops.shuffle(iota(), [3, 2, 1, 0]).to_array().tolist() == [3, 2, 1, 0]


def test_if_else1_selects_per_lane():
    a = ops.set1(NEON, 1.0, np.float32)
    b = ops.set1(NEON, 2.0, np.float32)
    out = ops.if_else1([True, False, True, False], a, b)
    assert out.to_array().tolist() == [1.0, 2.0, 1.0, 2.0]


def test_if_else1_validation():
    a = ops.set1(NEON, 1.0, np.float32)
    b = ops.set1(NEON, 2.0, np.float32)
    with pytest.raises(SimdError):
        ops.if_else1([True], a, b)  # wrong mask width
    c = ops.set1(AVX2, 2.0, np.float32)
    with pytest.raises(SimdError):
        ops.if_else1([True] * 4, a, c)  # lane mismatch


def test_comparisons():
    a = iota()  # 0 1 2 3
    assert ops.cmp_lt(a, 2.0) == [True, True, False, False]
    assert ops.cmp_le(a, 2.0) == [True, True, True, False]
    assert ops.cmp_eq(a, 2.0) == [False, False, True, False]
    b = ops.set1(NEON, 1.0, np.float32)
    assert ops.cmp_lt(b, a) == [False, False, True, True]


def test_comparison_mismatch_rejected():
    with pytest.raises(SimdError):
        ops.cmp_lt(iota(NEON), iota(AVX2))


def test_branch_free_clamp_kernel():
    """The NSIMD idiom: clamp via masks, no branches."""
    values = Pack(NEON, np.array([-5.0, 0.5, 2.0, 7.0], dtype=np.float32))
    lo, hi = ops.set1(NEON, 0.0, np.float32), ops.set1(NEON, 1.0, np.float32)
    clamped = ops.if_else1(ops.cmp_lt(values, 0.0), lo, values)
    clamped = ops.if_else1(ops.cmp_lt(hi, clamped), hi, clamped)
    assert clamped.to_array().tolist() == [0.0, 0.5, 1.0, 1.0]
