"""Executors: where and how bulk work is placed.

The paper's 1D solver combines HPX *block executors* with *block
allocators* so that "an HPX thread always spawns at a location of data"
(first-touch NUMA placement).  :class:`BlockExecutor` reproduces the
placement half: bulk work is cut into one contiguous chunk per worker
and each chunk is *pinned* to its worker -- no stealing, stable binding
across time steps.  :class:`PoolExecutor` is the default work-stealing
placement.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ...errors import RuntimeStateError
from ..futures import Future, when_all
from .pool import ThreadPool

__all__ = ["Executor", "PoolExecutor", "BlockExecutor", "static_chunks"]


def static_chunks(n_items: int, n_chunks: int) -> list[range]:
    """Split ``range(n_items)`` into ``n_chunks`` near-equal contiguous runs.

    The first ``n_items % n_chunks`` chunks get one extra element --
    OpenMP ``schedule(static)`` semantics.  Empty chunks are returned when
    ``n_chunks > n_items`` so placement stays aligned with workers.
    """
    if n_items < 0:
        raise RuntimeStateError("n_items must be non-negative")
    if n_chunks < 1:
        raise RuntimeStateError("n_chunks must be >= 1")
    base, extra = divmod(n_items, n_chunks)
    chunks: list[range] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


class Executor:
    """Interface: single-task and bulk submission onto a pool."""

    def __init__(self, pool: ThreadPool) -> None:
        self.pool = pool

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        raise NotImplementedError

    def bulk_submit(
        self, fn: Callable[[int], Any], indices: Sequence[int] | range
    ) -> list[Future]:
        """Submit ``fn(i)`` for every ``i``; returns one future per chunk."""
        raise NotImplementedError

    def bulk_sync(self, fn: Callable[[int], Any], indices: Sequence[int] | range) -> None:
        """Bulk submit and wait for completion."""
        when_all(self.bulk_submit(fn, indices)).get()


class PoolExecutor(Executor):
    """Default executor: every task goes to the work-stealing scheduler."""

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        return self.pool.submit(fn, *args, kwargs=kwargs or None)

    def bulk_submit(
        self, fn: Callable[[int], Any], indices: Sequence[int] | range
    ) -> list[Future]:
        return [self.pool.submit(fn, i, description=f"bulk[{i}]") for i in indices]


class BlockExecutor(Executor):
    """NUMA-aware static placement: chunk ``i`` always runs on worker ``i``.

    Combined with first-touch allocation this keeps every HPX thread at
    the location of its data, which is how the paper's 1D solver "makes
    up for the lack of bandwidth between chip-to-chip communications".
    """

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        # Single tasks are bound to worker 0 deterministically.
        return self.pool.submit(fn, *args, kwargs=kwargs or None, worker=0)

    def bulk_submit(
        self, fn: Callable[[int], Any], indices: Sequence[int] | range
    ) -> list[Future]:
        items = list(indices)
        futures: list[Future] = []
        chunks = static_chunks(len(items), self.pool.n_workers)
        for worker_id, chunk in enumerate(chunks):
            if not chunk:
                continue

            def run_chunk(chunk=chunk, items=items) -> list[Any]:
                return [fn(items[j]) for j in chunk]

            futures.append(
                self.pool.submit(
                    run_chunk,
                    worker=worker_id,
                    description=f"block[{worker_id}]",
                )
            )
        return futures

    def chunk_for(self, n_items: int, worker_id: int) -> range:
        """The index range worker ``worker_id`` owns for ``n_items`` items."""
        if not 0 <= worker_id < self.pool.n_workers:
            raise RuntimeStateError(
                f"worker {worker_id} out of range [0, {self.pool.n_workers})"
            )
        return static_chunks(n_items, self.pool.n_workers)[worker_id]
