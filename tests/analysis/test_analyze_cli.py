"""The ``repro analyze`` CLI surface."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_analyze_races_and_deadlocks_clean_demo(capsys):
    code, out = run_cli(
        capsys, "analyze", "--races", "--deadlocks", "--nodes", "2", "--steps", "3"
    )
    assert code == 0
    assert "races: none" in out
    assert "deadlocks: none" in out


def test_analyze_scheduler_flag(capsys):
    code, out = run_cli(
        capsys, "analyze", "--races", "--scheduler", "fifo", "--steps", "2"
    )
    assert code == 0
    assert "fifo scheduler" in out


def test_analyze_lint_clean_tree(capsys):
    code, out = run_cli(capsys, "analyze", "--lint", "src")
    assert code == 0


def test_analyze_lint_findings_exit_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    code, out = run_cli(capsys, "analyze", "--lint", str(bad))
    assert code == 1
    assert "PX501" in out


def test_analyze_lint_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    code, out = run_cli(capsys, "analyze", "--lint", "--json", str(bad))
    assert code == 1
    assert json.loads(out)[0]["code"] == "PX501"
