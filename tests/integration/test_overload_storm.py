"""Integration: overload storms + outage windows stay graceful.

The tentpole acceptance scenario: a LOW-priority parcel storm at 6x the
target locality's drain rate, overlapping a scheduled outage window that
retries must bridge, under every scheduler.  With overload protection
enabled the run must (a) finish without the deadlock detector finding a
wait cycle, (b) keep the target's queue depth bounded by the admission
policy, and (c) produce a solution bit-identical to the storm-free,
fault-free reference once the window has passed -- overload and outages
cost time and shed background parcels, never bits.
"""

import numpy as np
import pytest

from repro import analysis
from repro.config import Config
from repro.resilience import FaultInjector
from repro.runtime import context as ctx
from repro.runtime.runtime import Runtime
from repro.runtime.threads.hpx_thread import ThreadPriority
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX, STEPS = 64, 20
U0 = np.sin(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))
REFERENCE = heat1d_reference(U0, STEPS, Heat1DParams())
SCHEDULERS = ("fifo", "static", "work-stealing")

# 6x ingress-to-drain storm (see ``repro run --overload``): each wave
# offers 24 LOW sink parcels against a drain capacity of 4 per wave.
FACTOR = 6
WAVES = 12
SINK_COST_S = 1e-3
WAVE_DT_S = 2e-3


def _sink(cost: float) -> None:
    ctx.add_cost(cost)


def _launch_storm(rt: Runtime) -> int:
    pool0 = rt.localities[0].pool
    per_wave = 4 * FACTOR

    def wave(index: int) -> None:
        for _ in range(per_wave):
            rt.apply_at(1, _sink, SINK_COST_S, priority=ThreadPriority.LOW)
        if index + 1 < WAVES:
            pool0.submit(
                wave,
                index + 1,
                ready_time=pool0.now + WAVE_DT_S,
                description=f"storm-wave#{index + 1}",
            )

    pool0.submit(wave, 0, description="storm-wave#0")
    return per_wave * WAVES


def _storm_outage_run(scheduler: str) -> dict:
    injector = FaultInjector(seed=7).fail_locality(1, at=1e-5, until=3e-5)
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        fault_injector=injector,
        config=Config(
            threads__scheduler=scheduler,
            overload__enabled=True,
            parcel__retry_jitter=0.25,
        ),
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams())
        solver.initialize(U0)
        submitted = _launch_storm(rt)
        # The deadlock detector raises on any wait cycle, so a clean
        # return *is* the "no findings" assertion.
        with analysis.attach(races=False):
            solution = rt.run(lambda: solver.run(STEPS))
        controller = rt._overload
        return {
            "solution": solution,
            "makespan": rt.makespan,
            "peak_depth": rt.localities[1].pool.peak_pending,
            "max_queue_depth": controller.policy.max_queue_depth,
            "submitted": submitted,
            "completed": controller.parcels_completed,
            "shed": controller.parcels_shed,
            "deferred": controller.parcels_deferred,
            "dead": rt.parcelport.parcels_dead_lettered,
        }


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_storm_over_outage_stays_graceful(scheduler):
    run = _storm_outage_run(scheduler)
    # (a) no deadlock findings: _storm_outage_run returned at all;
    # (b) the backlog stays bounded by the admission policy (plus one
    #     wave of slack for parcels admitted before pressure built);
    assert run["peak_depth"] <= run["max_queue_depth"] + 4 * FACTOR
    # (c) the answer is bit-identical to the unloaded, fault-free run.
    assert np.array_equal(run["solution"], REFERENCE)
    # The storm actually stressed admission: decisions were made.
    assert run["shed"] + run["deferred"] > 0


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_storm_accounting_balances(scheduler):
    """Every cross-locality parcel is completed, shed, or dead-lettered."""
    run = _storm_outage_run(scheduler)
    # The stencil's own cross-locality parcels are in "completed" too,
    # so the balance is >= the storm's submissions: every storm parcel
    # ended up delivered, shed, or dead-lettered -- none leaked into a
    # forever-deferred or forever-stalled limbo.
    assert run["completed"] + run["shed"] + run["dead"] >= run["submitted"]


def test_storm_outage_run_is_deterministic():
    one = _storm_outage_run("work-stealing")
    two = _storm_outage_run("work-stealing")
    assert one["makespan"] == two["makespan"]
    assert np.array_equal(one["solution"], two["solution"])
    for key in ("peak_depth", "completed", "shed", "deferred", "dead"):
        assert one[key] == two[key]
