"""Execution context: who is running, where, and at what virtual time.

The runtime executes cooperatively in one OS thread, so "thread local"
state is a simple module-level stack: the innermost frame names the
active runtime, locality, thread pool, worker and HPX-thread.  Kernels
use :func:`add_cost` to attribute virtual compute seconds to the HPX
thread that is executing them, and blocking future reads record
dependency completion times so a task's virtual finish time respects its
data flow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from .locality import Locality
    from .runtime import Runtime
    from .threads.hpx_thread import HpxThread
    from .threads.pool import ThreadPool

__all__ = [
    "ExecutionContext",
    "current",
    "current_or_none",
    "push",
    "pop",
    "add_cost",
    "current_task",
    "here",
]


class ExecutionContext:
    """One frame of the execution-context stack.

    A frame is built for every task execution, so this is a slotted
    plain class rather than a dataclass: no per-frame ``extras`` dict is
    allocated up front (callers that need scratch space assign one).
    """

    __slots__ = ("runtime", "locality", "pool", "worker_id", "task", "extras")

    def __init__(
        self,
        runtime: "Runtime | None" = None,
        locality: "Locality | None" = None,
        pool: "ThreadPool | None" = None,
        worker_id: int | None = None,
        task: "HpxThread | None" = None,
        extras: dict | None = None,
    ) -> None:
        self.runtime = runtime
        self.locality = locality
        self.pool = pool
        self.worker_id = worker_id
        self.task = task
        self.extras = extras


_stack: list[ExecutionContext] = []


def push(ctx: ExecutionContext) -> None:
    """Enter a context frame (runtime boot, task execution)."""
    _stack.append(ctx)


def pop() -> ExecutionContext:
    """Leave the innermost context frame."""
    if not _stack:
        raise RuntimeStateError("context stack underflow")
    return _stack.pop()


def current() -> ExecutionContext:
    """The innermost context; raises outside any runtime."""
    if not _stack:
        raise RuntimeStateError(
            "no active runtime context; run inside Runtime.run() or a task"
        )
    return _stack[-1]


def current_or_none() -> Optional[ExecutionContext]:
    """The innermost context, or None outside any runtime."""
    return _stack[-1] if _stack else None


def current_task() -> "HpxThread | None":
    """The HPX thread currently executing, if any."""
    ctx = current_or_none()
    return ctx.task if ctx else None


def add_cost(seconds: float) -> None:
    """Attribute ``seconds`` of virtual compute time to the running task.

    Outside a task (e.g. plain unit-test calls) this is a no-op so kernels
    can be called directly.
    """
    if seconds < 0:
        raise RuntimeStateError(f"cost must be non-negative, got {seconds!r}")
    task = current_task()
    if task is not None:
        task.accrue_cost(seconds)


def here() -> "Locality":
    """The locality this code runs on (HPX ``find_here``)."""
    ctx = current()
    if ctx.locality is None:
        raise RuntimeStateError("context has no locality (runtime not booted?)")
    return ctx.locality
