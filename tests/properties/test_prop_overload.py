"""Property: overload admission conserves parcels.

For any mix of LOW background parcels and NORMAL request parcels toward
one destination, under any credit budget and deferral allowance, every
cross-locality parcel must end in exactly one of three ledgers --
completed (handler acked), shed (admission refused it), or dead-lettered
(retries exhausted) -- and the three must sum to the submissions.  A
violation means a parcel leaked into a forever-stalled or
forever-deferred limbo, which is precisely the unbounded-growth failure
overload protection exists to prevent.
"""

from hypothesis import given, settings, strategies as st

from repro.config import Config
from repro.runtime import async_, context as ctx
from repro.runtime.runtime import Runtime
from repro.runtime.threads.hpx_thread import ThreadPriority


def _unit() -> int:
    return 1


def _sink(cost: float) -> None:
    ctx.add_cost(cost)


def _storm(n_low, n_normal, credits, defer_max, sink_cost):
    with Runtime(
        n_localities=2,
        workers_per_locality=2,
        config=Config(
            overload__enabled=True,
            overload__credits=credits,
            overload__defer_max=defer_max,
            overload__defer_base_s=1e-6,
        ),
    ) as rt:

        controller = rt._overload
        submitted = n_low + n_normal

        def _settled():
            return (
                controller.parcels_completed
                + controller.parcels_shed
                + rt.parcelport.parcels_dead_lettered
            ) >= submitted

        def main():
            for _ in range(n_low):
                rt.apply_at(1, _sink, sink_cost, priority=ThreadPriority.LOW)
            futures = [rt.async_at(1, _unit) for _ in range(n_normal)]
            total = sum(f.get() for f in futures)
            # Fire-and-forget LOW parcels may still be queued (or parked
            # in a deferral) when the futures resolve: advance virtual
            # time and *suspend* (the get() is the yield point that lets
            # other pools drain), bounded, until the ledger settles.  A
            # parcel that leaked into limbo keeps _settled() false and
            # the property fails below -- exactly the violation hunted.
            for _ in range(5_000):
                if _settled():
                    break
                ctx.add_cost(1e-4)
                async_(lambda: None).get()
            return total

        assert rt.run(main) == n_normal
        return {
            "completed": controller.parcels_completed,
            "shed": controller.parcels_shed,
            "dead": rt.parcelport.parcels_dead_lettered,
            "stalled": controller.stalled_count(),
        }


@settings(max_examples=25, deadline=None)
@given(
    n_low=st.integers(min_value=0, max_value=20),
    n_normal=st.integers(min_value=0, max_value=12),
    credits=st.integers(min_value=1, max_value=8),
    defer_max=st.integers(min_value=0, max_value=3),
    sink_cost=st.sampled_from((1e-5, 1e-3, 1e-2)),
)
def test_shed_plus_delivered_plus_dead_equals_submitted(
    n_low, n_normal, credits, defer_max, sink_cost
):
    ledger = _storm(n_low, n_normal, credits, defer_max, sink_cost)
    submitted = n_low + n_normal
    assert ledger["completed"] + ledger["shed"] + ledger["dead"] == submitted
    assert ledger["stalled"] == 0  # nothing left parked at shutdown


@settings(max_examples=10, deadline=None)
@given(
    n_low=st.integers(min_value=0, max_value=15),
    credits=st.integers(min_value=1, max_value=4),
)
def test_conservation_is_deterministic(n_low, credits):
    one = _storm(n_low, 6, credits, defer_max=2, sink_cost=1e-3)
    two = _storm(n_low, 6, credits, defer_max=2, sink_cost=1e-3)
    assert one == two
