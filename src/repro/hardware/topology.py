"""hwloc-like topology tree and thread pinning.

The paper pins one HPX worker per *physical* core with ``hwloc-bind`` and
relies on first-touch NUMA placement.  This module models the object tree
(machine -> socket -> NUMA domain -> core -> PU) plus cpusets and the
compact / scatter pinning orders the benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import PinningError, TopologyError
from .spec import ProcessorSpec

__all__ = ["CpuSet", "ProcessingUnit", "Core", "NumaDomain", "Socket", "Machine"]


class CpuSet:
    """An ordered, duplicate-free set of PU (hardware-thread) indices."""

    __slots__ = ("_ids",)

    def __init__(self, ids: Sequence[int] = ()) -> None:
        seen: set[int] = set()
        ordered: list[int] = []
        for i in ids:
            if i < 0:
                raise TopologyError(f"negative PU index {i}")
            if i not in seen:
                seen.add(i)
                ordered.append(i)
        self._ids = tuple(ordered)

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, i: int) -> bool:
        return i in set(self._ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CpuSet):
            return NotImplemented
        return set(self._ids) == set(other._ids)

    def __hash__(self) -> int:
        return hash(frozenset(self._ids))

    def union(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(tuple(self._ids) + tuple(other._ids))

    def intersection(self, other: "CpuSet") -> "CpuSet":
        other_set = set(other._ids)
        return CpuSet(tuple(i for i in self._ids if i in other_set))

    def first(self, n: int) -> "CpuSet":
        return CpuSet(self._ids[:n])

    def __repr__(self) -> str:  # pragma: no cover
        return f"CpuSet({list(self._ids)!r})"


@dataclass(frozen=True)
class ProcessingUnit:
    """One hardware thread (hwloc PU)."""

    pu_id: int
    core_id: int
    smt_index: int  # 0 for the first hardware thread of the core


@dataclass(frozen=True)
class Core:
    """One physical core with its SMT processing units."""

    core_id: int
    domain_id: int
    socket_id: int
    pus: tuple[ProcessingUnit, ...]

    @property
    def first_pu(self) -> ProcessingUnit:
        """The physical PU the paper pins to (SMT sibling 0)."""
        return self.pus[0]


@dataclass(frozen=True)
class NumaDomain:
    """One NUMA domain (memory locality) with its cores."""

    domain_id: int
    socket_id: int
    cores: tuple[Core, ...]

    @property
    def n_cores(self) -> int:
        return len(self.cores)


@dataclass(frozen=True)
class Socket:
    """One physical package."""

    socket_id: int
    domains: tuple[NumaDomain, ...]


@dataclass
class Machine:
    """The full node topology built from a :class:`ProcessorSpec`."""

    spec: ProcessorSpec
    sockets: tuple[Socket, ...] = field(init=False)

    def __post_init__(self) -> None:
        spec = self.spec
        domains_per_socket, rem = divmod(spec.numa_domains, spec.processors_per_node)
        if rem:
            raise TopologyError(
                f"{spec.name}: {spec.numa_domains} domains do not divide into "
                f"{spec.processors_per_node} sockets"
            )
        cores_per_domain = spec.cores_per_domain
        sockets: list[Socket] = []
        core_id = 0
        pu_id = 0
        for s in range(spec.processors_per_node):
            domains: list[NumaDomain] = []
            for d in range(domains_per_socket):
                domain_id = s * domains_per_socket + d
                cores: list[Core] = []
                for _ in range(cores_per_domain):
                    pus = tuple(
                        ProcessingUnit(pu_id=pu_id + t, core_id=core_id, smt_index=t)
                        for t in range(spec.threads_per_core)
                    )
                    cores.append(
                        Core(core_id=core_id, domain_id=domain_id, socket_id=s, pus=pus)
                    )
                    pu_id += spec.threads_per_core
                    core_id += 1
                domains.append(
                    NumaDomain(domain_id=domain_id, socket_id=s, cores=tuple(cores))
                )
            sockets.append(Socket(socket_id=s, domains=tuple(domains)))
        self.sockets = tuple(sockets)

    # Queries ---------------------------------------------------------------
    @property
    def domains(self) -> tuple[NumaDomain, ...]:
        return tuple(d for s in self.sockets for d in s.domains)

    @property
    def cores(self) -> tuple[Core, ...]:
        return tuple(c for d in self.domains for c in d.cores)

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def core(self, core_id: int) -> Core:
        cores = self.cores
        if not 0 <= core_id < len(cores):
            raise TopologyError(f"core id {core_id} out of range [0, {len(cores)})")
        return cores[core_id]

    def domain_of_core(self, core_id: int) -> NumaDomain:
        return self.domains[self.core(core_id).domain_id]

    # Pinning ---------------------------------------------------------------
    def pin_compact(self, n_workers: int) -> CpuSet:
        """Pin ``n_workers`` to physical PUs filling domains in order.

        This is the ``hwloc-bind`` placement the paper uses: one worker per
        physical core (SMT sibling 0), domains filled one after another.
        """
        cores = self.cores
        if not 1 <= n_workers <= len(cores):
            raise PinningError(
                f"cannot pin {n_workers} workers on {len(cores)} physical cores"
            )
        return CpuSet([cores[i].first_pu.pu_id for i in range(n_workers)])

    def pin_scatter(self, n_workers: int) -> CpuSet:
        """Pin ``n_workers`` round-robin across NUMA domains.

        Used by the STREAM benchmark variant that spreads load to expose
        aggregate bandwidth earlier.
        """
        domains = self.domains
        if not 1 <= n_workers <= self.n_cores:
            raise PinningError(
                f"cannot pin {n_workers} workers on {self.n_cores} physical cores"
            )
        picked: list[int] = []
        idx = [0] * len(domains)
        d = 0
        while len(picked) < n_workers:
            domain = domains[d % len(domains)]
            if idx[d % len(domains)] < domain.n_cores:
                core = domain.cores[idx[d % len(domains)]]
                picked.append(core.first_pu.pu_id)
                idx[d % len(domains)] += 1
            d += 1
        return CpuSet(picked)

    def cores_per_domain_for(self, cpuset: CpuSet) -> dict[int, int]:
        """Count of pinned workers per NUMA domain (drives the NUMA model)."""
        pu_to_core = {pu.pu_id: c for c in self.cores for pu in c.pus}
        counts: dict[int, int] = {}
        for pu_id in cpuset:
            if pu_id not in pu_to_core:
                raise PinningError(f"PU {pu_id} does not exist on {self.spec.name}")
            core = pu_to_core[pu_id]
            counts[core.domain_id] = counts.get(core.domain_id, 0) + 1
        return counts
