"""Chrome trace-event export for :class:`~repro.runtime.trace.Tracer`.

The trace-event format (one JSON object with a ``traceEvents`` array)
is what Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
load natively -- the closest widely-deployed analogue of the
APEX/OTF2 traces HPX produces.  The mapping:

* each pool (= locality) becomes a *process*, each worker a *thread*
  (``M``etadata events name them);
* each executed task becomes a complete span (``ph: "X"``);
* steals, drops, retries and outages become instant events
  (``ph: "i"``);
* each parcel whose handler task was traced gets a *flow arrow*
  (``ph: "s"`` at the send, ``ph: "f"`` binding to the enclosing
  handler span) -- in Perfetto this draws the arrow from the sending
  task to the handler task it spawned on the destination locality.

Timestamps are microseconds of *virtual* time (the trace-event unit).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.trace import Tracer

__all__ = ["chrome_trace_events", "export_chrome_trace"]

#: Virtual seconds -> trace-event microseconds.
_US = 1e6

#: Default pid for events with no located pool (job-wide parcel events).
_JOB_PID = 0


def _pid_map(tracer: "Tracer") -> dict[str, int]:
    """Stable pool-name -> pid assignment (pid 0 is the job itself)."""
    names: list[str] = []
    for record in tracer.records:
        if record.pool not in names:
            names.append(record.pool)
    for name in tracer.pool_workers:
        if name not in names:
            names.append(name)
    for event in tracer.events:
        if event.pool and event.pool not in names:
            names.append(event.pool)
    return {name: i + 1 for i, name in enumerate(sorted(names))}


def chrome_trace_events(tracer: "Tracer") -> list[dict]:
    """The ``traceEvents`` array for one tracer's timeline."""
    pids = _pid_map(tracer)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _JOB_PID,
            "tid": 0,
            "args": {"name": "job"},
        }
    ]
    for name, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
        for worker_id in range(tracer.pool_workers.get(name, 0)):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": worker_id,
                    "args": {"name": f"worker-{worker_id}"},
                }
            )

    # Task spans -- and remember where each parcel handler ran so flow
    # arrows can terminate inside the handler's span.
    handler_spans: dict[int, dict] = {}
    for record in tracer.records:
        span = {
            "name": record.description or f"task#{record.tid}",
            "cat": "task",
            "ph": "X",
            "ts": record.start_time * _US,
            "dur": record.duration * _US,
            "pid": pids[record.pool],
            "tid": record.worker_id,
            "args": {
                "tid": record.tid,
                "ready_time_s": record.ready_time,
                "queue_delay_s": record.queue_delay,
            },
        }
        events.append(span)
        if record.description.startswith("parcel#"):
            suffix = record.description[len("parcel#"):]
            if suffix.isdigit():
                handler_spans.setdefault(int(suffix), span)

    # Flow arrows: parcel send -> handler task.  The start step rides on
    # the sending task's lane (when the send happened inside a traced
    # task); the finish step binds to the enclosing handler span.
    flowed: set[int] = set()
    for event in tracer.events:
        if event.kind != "parcel_send" or event.parcel_id is None:
            continue
        handler = handler_spans.get(event.parcel_id)
        if handler is None or event.parcel_id in flowed:
            continue
        flowed.add(event.parcel_id)
        events.append(
            {
                "name": "parcel",
                "cat": "parcel",
                "ph": "s",
                "id": event.parcel_id,
                "ts": event.time * _US,
                "pid": pids.get(event.pool, _JOB_PID),
                "tid": event.worker_id if event.worker_id is not None else 0,
            }
        )
        events.append(
            {
                "name": "parcel",
                "cat": "parcel",
                "ph": "f",
                "bp": "e",  # bind to the enclosing (handler) slice
                "id": event.parcel_id,
                "ts": handler["ts"],
                "pid": handler["pid"],
                "tid": handler["tid"],
            }
        )

    # Instant events.
    for event in tracer.events:
        if event.kind in ("parcel_send", "parcel_recv"):
            continue  # already represented by flows / handler spans
        instant = {
            "name": event.kind,
            "cat": "runtime",
            "ph": "i",
            "ts": event.time * _US,
            "pid": pids.get(event.pool, _JOB_PID),
            "tid": event.worker_id if event.worker_id is not None else 0,
            "s": "t" if event.worker_id is not None else "p",
            "args": dict(event.args),
        }
        if event.parcel_id is not None:
            instant["args"]["parcel_id"] = event.parcel_id
        events.append(instant)

    events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"], e["tid"]))
    return events


def export_chrome_trace(tracer: "Tracer", path: str | None = None) -> str:
    """Serialize a tracer's timeline; optionally write it to ``path``."""
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual", "source": "repro.observability"},
    }
    text = json.dumps(document, indent=None, separators=(",", ":"))
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text
