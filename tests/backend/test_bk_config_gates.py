"""Multiprocess backend rejects virtual-clock-only features eagerly.

Outage windows, credit timing, schedule replay, and modelled
interconnects are all *virtual-time* constructs; combining them with
real OS processes would silently measure something else.  Every combo
must fail fast with a :class:`~repro.errors.ConfigError` at Runtime
construction (or at the resilient entry point), never mid-run.
"""

from __future__ import annotations

import pytest

from repro.config import Config
from repro.errors import ConfigError
from repro.resilience import FaultInjector
from repro.runtime.runtime import Runtime


def _mp_config(**extra):
    return Config.from_mapping({"runtime.backend": "multiprocess", **extra})


def test_rejects_fault_injector():
    injector = FaultInjector(seed=0, drop_rate=0.5)
    with pytest.raises(ConfigError, match="fault injection"):
        Runtime(n_localities=2, config=_mp_config(), fault_injector=injector)


def test_rejects_deterministic_replay():
    config = _mp_config(**{"runtime.deterministic_replay": True})
    with pytest.raises(ConfigError, match="replay"):
        Runtime(n_localities=2, config=config)


def test_rejects_overload_protection():
    config = _mp_config(**{"overload.enabled": True})
    with pytest.raises(ConfigError, match="overload"):
        Runtime(n_localities=2, config=config)


def test_rejects_machine_models():
    with pytest.raises(ConfigError, match="machine"):
        Runtime(n_localities=2, machine="xeon-e5-2660v3", config=_mp_config())


def test_rejects_by_reference_parcels():
    config = _mp_config(**{"parcel.serialize": False})
    with pytest.raises(ConfigError, match="serialize"):
        Runtime(n_localities=2, config=config)


def test_rejects_process_count_mismatch():
    config = _mp_config(**{"runtime.processes": 3})
    with pytest.raises(ConfigError, match="processes"):
        Runtime(n_localities=2, config=config)


def test_accepts_explicit_matching_process_count():
    config = _mp_config(**{"runtime.processes": 2})
    with Runtime(n_localities=2, workers_per_locality=1, config=config) as rt:
        assert rt.distributed is True
        assert rt.backend.counters()["processes"] == 2.0


def test_run_resilient_rejected_on_multiprocess():
    from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    with Runtime(n_localities=2, workers_per_locality=1, config=_mp_config()) as rt:
        solver = DistributedHeat1D(rt, 16, Heat1DParams(), partitions_per_locality=1)
        solver.initialize(analytic_heat_profile(16))
        with pytest.raises(ConfigError, match="run_resilient"):
            solver.run_resilient(4)


def test_jacobi_run_resilient_rejected_on_multiprocess():
    import numpy as np

    from repro.stencil.jacobi2d_dist import DistributedJacobi2D

    with Runtime(n_localities=2, workers_per_locality=1, config=_mp_config()) as rt:
        solver = DistributedJacobi2D(rt, 6, 8)
        solver.initialize(np.zeros((6, 8)))
        with pytest.raises(ConfigError, match="run_resilient"):
            solver.run_resilient(4)


def test_virtual_backend_still_accepts_all_features():
    """The gates are backend-specific: virtual keeps the whole stack."""
    injector = FaultInjector(seed=0)
    config = Config(overload__enabled=True)
    with Runtime(
        n_localities=2,
        machine="xeon-e5-2660v3",
        config=config,
        fault_injector=injector,
    ) as rt:
        assert rt.distributed is False
