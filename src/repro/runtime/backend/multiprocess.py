"""The multiprocess backend: one OS process per locality, real cores.

Topology is hub-and-spoke: the driver process (locality 0, the one that
constructed the user's :class:`Runtime`) owns a duplex pipe to each
worker process and relays worker-to-worker traffic.  Every process runs
a full Runtime over the *same* locality count -- its own locality is the
one it executes; parcels routed anywhere else are intercepted at the
router and carried over the pipes in the existing encode-once wire
format (:mod:`repro.runtime.backend.wire`).

Because each process is a real Python interpreter, per-locality worker
pools do real concurrent work outside the driver's GIL -- which is the
entire point: wall-clock speedup on multi-core hosts instead of modelled
speedup on the virtual clock.

What the virtual clock guarantees and this backend does not: virtual
timestamps are only locally monotonic (cross-process ``makespan`` is not
a job-wide clock), and anything defined *in terms of* the virtual clock
-- fault-injection windows, overload credits, deterministic replay, the
modelled interconnects -- is rejected up front with a
:class:`~repro.errors.ConfigError` (see
``Runtime._check_distributed_config``).

AGAS stays coherent by construction: every registration is mirrored to
every process (the home process receives the pickled component, others a
placeholder binding), with a synchronous resolve broker through the
driver as the fallback for a GID a process has never heard of.
"""
# This file IS the OS-process transport: the one place in the tree where
# real OS concurrency primitives are the point, not a bypass.
# repro-lint: disable-file=PX201

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING, Any

from ...errors import RuntimeStateError
from ..futures import Promise
from ..parcel.parcel import Parcel
from ..parcel.serialization import serialize
from .base import ExecutionBackend
from .wire import decode_message, parcel_entry, send_message

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection

    from ...config import Config
    from ..agas.component import Component
    from ..agas.gid import Gid
    from ..runtime import Runtime

__all__ = ["MultiprocessBackend"]

#: Outbound parcel entries buffered before an automatic flush.
_OUTBOX_CAP = 64
#: Progress-loop steps between opportunistic transport polls.
_SERVICE_MASK = 0x3F


class _PipeBackend(ExecutionBackend):
    """Shared send/dispatch machinery for the driver and worker sides."""

    distributed = True

    def __init__(self) -> None:
        # Per-destination-locality parcel entries awaiting a flush (the
        # wire-level analogue of the in-process parcel batcher: many
        # parcels, one framed message).
        self._outbox: dict[int, list[tuple]] = {}
        self._outbox_size = 0
        # seq -> reply Promise for tokened sends originated here.
        self._tokens: dict[int, Promise] = {}
        self._token_seq = 0
        self._resolve_seq = 0
        self._resolved: dict[int, int] = {}
        self._tick = 0
        #: Any wire sends since the last sync ack/round (termination
        #: detection reads and resets this).
        self._activity = False
        self._stopping = False
        # Counters (perfcounter sources; see /backend{total}/...).
        self.parcels_forwarded = 0
        self.parcels_received = 0
        self.parcels_relayed = 0
        self.replies_sent = 0
        self.replies_received = 0
        self.messages_sent = 0
        self.wire_bytes_sent = 0
        self.agas_creates = 0
        self.agas_resolves = 0
        self.sync_rounds = 0

    # Transport primitives (side-specific) ---------------------------------
    def _send(self, destination: int, message: tuple) -> None:
        raise NotImplementedError

    def _service(self, block: bool) -> bool:
        """Receive and dispatch pending messages; True if any arrived."""
        raise NotImplementedError

    # Send path -------------------------------------------------------------
    def forward_parcel(self, parcel: Parcel, destination: int) -> None:
        token = None
        promise = parcel.reply_promise
        if promise is not None and not parcel.fire_and_forget:
            self._token_seq += 1
            token = (self.my_id, self._token_seq)
            self._tokens[self._token_seq] = promise
        self._outbox.setdefault(destination, []).append(
            parcel_entry(parcel, destination, token)
        )
        self._outbox_size += 1
        self.parcels_forwarded += 1
        if self._outbox_size >= _OUTBOX_CAP:
            self.flush()

    def flush(self) -> None:
        if not self._outbox_size:
            return
        outbox, self._outbox = self._outbox, {}
        self._outbox_size = 0
        for destination, entries in outbox.items():
            self._send(destination, ("parcels", entries))
        self._activity = True

    def maybe_service(self) -> bool:
        self._tick += 1
        if self._tick & _SERVICE_MASK:
            return False
        self.flush()
        return self._service(block=False)

    def poll(self) -> bool:
        self.flush()
        return self._service(block=False)

    def on_stall(self) -> bool:
        self.flush()
        return self._service(block=True)

    # Inbound dispatch ------------------------------------------------------
    def _dispatch(self, message: tuple) -> None:
        kind = message[0]
        if kind == "parcels":
            for entry in message[1]:
                self._route_entry(entry)
        elif kind == "reply":
            _, origin, seq, ok, data = message
            self._route_reply(origin, seq, ok, data)
        elif kind == "create":
            _, origin, gid, home, data = message
            self._apply_create(origin, gid, home, data)
        elif kind == "resolve":
            _, req_id, gid, origin = message
            self._answer_resolve(req_id, gid, origin)
        elif kind == "resolved":
            _, req_id, _gid, home = message
            self._resolved[req_id] = home
        else:
            self._dispatch_control(message)

    def _dispatch_control(self, message: tuple) -> None:
        raise RuntimeStateError(f"unexpected wire message {message[0]!r}")

    def _route_entry(self, entry: tuple) -> None:
        """Deliver (or, on the driver, relay) one inbound parcel entry."""
        destination = entry[1]
        if destination == self.my_id:
            self._deliver_entry(entry)
        else:
            self._outbox.setdefault(destination, []).append(entry)
            self._outbox_size += 1
            self.parcels_relayed += 1

    def _deliver_entry(self, entry: tuple) -> None:
        source, _dest, payload, gid, target_locality, token, faf, priority = entry
        runtime = self.runtime
        parcel = Parcel(
            source_locality=source,
            payload=payload,
            target_gid=gid,
            target_locality=target_locality,
            send_time=runtime.makespan,
        )
        parcel.fire_and_forget = faf
        parcel.priority = priority
        promise = Promise()
        parcel.reply_promise = promise
        if token is not None:
            origin, seq = token
            backend = self

            def relay_reply(future: Any) -> None:
                state = future._state
                if state.exception is None:
                    try:
                        data = serialize(state.value)
                        ok = True
                    except Exception as exc:  # unpicklable result
                        data = serialize(exc)
                        ok = False
                else:
                    data = serialize(state.exception)
                    ok = False
                backend._send(origin, ("reply", origin, seq, ok, data))
                backend.replies_sent += 1
                backend._activity = True

            promise.get_future()._on_ready(relay_reply)
        self.parcels_received += 1
        runtime._route_parcel(parcel, arrival_time=parcel.send_time)

    def _route_reply(self, origin: int, seq: int, ok: bool, data: bytes) -> None:
        if origin != self.my_id:  # driver relaying a worker's reply
            self._send(origin, ("reply", origin, seq, ok, data))
            return
        promise = self._tokens.pop(seq, None)
        if promise is None:
            return
        self.replies_received += 1
        value = decode_message(data)
        pool = self.runtime.localities[self.my_id].pool

        def deliver() -> None:
            if ok:
                promise.set_value(value)
            else:
                promise.set_exception(value)

        pool.submit(deliver, description="remote-reply")

    # AGAS mirroring --------------------------------------------------------
    def component_registered(
        self, component: "Component", gid: "Gid", home: int
    ) -> None:
        self.agas_creates += 1
        self._broadcast_create(
            self.my_id, gid, home, serialize(component), exclude=self.my_id
        )

    def _apply_create(self, origin: int, gid: "Gid", home: int, data: bytes) -> None:
        agas = self.runtime.agas
        if gid not in agas:
            obj = decode_message(data) if home == self.my_id else None
            agas.register_at(obj, gid, home)
            self.agas_creates += 1
        self._broadcast_create(origin, gid, home, data, exclude=origin)

    def _broadcast_create(
        self, origin: int, gid: "Gid", home: int, data: bytes, exclude: int
    ) -> None:
        raise NotImplementedError

    def _answer_resolve(self, req_id: int, gid: "Gid", origin: int) -> None:
        agas = self.runtime.agas
        home = agas.home_of(gid) if gid in agas else -1
        self._send(origin, ("resolved", req_id, gid, home))

    def _broker_resolve(self, gid: "Gid") -> tuple[int, Any] | None:
        """AGAS fallback: ask the driver where an unknown GID lives.

        Blocks (dispatching other traffic reentrantly) until the answer
        arrives; returns ``(home, placeholder)`` or None when the driver
        does not know the GID either.
        """
        if self._stopping:
            return None
        self._resolve_seq += 1
        req_id = self._resolve_seq
        self._send(0, ("resolve", req_id, gid, self.my_id))
        while req_id not in self._resolved:
            if not self._service(block=True):
                return None
        home = self._resolved.pop(req_id)
        if home < 0:
            return None
        self.agas_resolves += 1
        return home, None

    # Local draining --------------------------------------------------------
    def _drain_local(self) -> None:
        """Run every runnable task in this process, then flush."""
        runtime = self.runtime
        while True:
            loc, hint = runtime._next_locality()
            if loc is None:
                break
            runtime._step_locality(loc, hint)
            self.maybe_service()
        batcher = runtime._batcher
        if batcher is not None and batcher.pending:
            batcher.flush_all()
        self.flush()

    def _busy(self) -> bool:
        return (
            self._activity
            or bool(self._tokens)
            or bool(self._outbox_size)
            or any(loc.pool.pending() for loc in self.runtime.localities)
        )

    # Observability ---------------------------------------------------------
    def counters(self) -> dict[str, float]:
        return {
            "parcels_forwarded": float(self.parcels_forwarded),
            "parcels_received": float(self.parcels_received),
            "parcels_relayed": float(self.parcels_relayed),
            "replies_sent": float(self.replies_sent),
            "replies_received": float(self.replies_received),
            "messages_sent": float(self.messages_sent),
            "wire_bytes_sent": float(self.wire_bytes_sent),
            "agas_creates": float(self.agas_creates),
            "agas_resolves": float(self.agas_resolves),
            "sync_rounds": float(self.sync_rounds),
        }


class MultiprocessBackend(_PipeBackend):
    """Driver side: owns the worker processes and relays their traffic."""

    name = "multiprocess"
    my_id = 0

    def __init__(self) -> None:
        super().__init__()
        self._conns: dict[int, "Connection"] = {}
        self._procs: dict[int, Any] = {}
        self._worker_stats: dict[int, dict[str, Any]] = {}
        self._stopped_workers: set[int] = set()
        self._worker_busy: dict[int, bool] = {}
        self._acks: dict[int, set[int]] = {}
        self._sync_seq = 0

    # Lifecycle -------------------------------------------------------------
    def start(self) -> None:
        import multiprocessing as mp

        runtime = self.runtime
        config = runtime.config
        method = config.get_str("runtime.mp_start_method")
        if method == "auto":
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        mp_ctx = mp.get_context(method)
        values = dict(config)
        self.processes = runtime.n_localities
        for worker_id in range(1, runtime.n_localities):
            parent, child = mp_ctx.Pipe(duplex=True)
            proc = mp_ctx.Process(
                target=_worker_entry,
                args=(
                    child,
                    worker_id,
                    runtime.n_localities,
                    runtime.workers_per_locality,
                    values,
                ),
                name=f"repro-locality-{worker_id}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns[worker_id] = parent
            self._procs[worker_id] = proc

    def quiesce(self) -> None:
        """Termination detection: repeat drain+sync rounds until a full
        round passes with every process idle and no traffic moved."""
        if not self._conns:
            return
        timeout = self.runtime.config.get_float("runtime.mp_stall_timeout_s")
        max_rounds = self.runtime.config.get_int("runtime.mp_sync_rounds")
        for _ in range(max_rounds):
            self._drain_local()
            round_activity = self._activity
            self._activity = False
            self._sync_seq += 1
            seq = self._sync_seq
            self._acks[seq] = set()
            self._worker_busy = {}
            for worker_id in self._conns:
                self._send(worker_id, ("sync", seq))
            while len(self._acks[seq]) < len(self._conns) - len(
                self._stopped_workers
            ):
                if not self._service(block=True):
                    raise RuntimeStateError(
                        f"multiprocess shutdown: sync round {seq} timed out "
                        f"after {timeout:g}s awaiting worker acks"
                    )
                self._drain_local()
            del self._acks[seq]
            self.sync_rounds += 1
            busy = (
                round_activity
                or self._activity
                or bool(self._tokens)
                or any(self._worker_busy.values())
                or any(loc.pool.pending() for loc in self.runtime.localities)
            )
            if not busy:
                return
        warnings.warn(
            f"multiprocess shutdown: traffic still moving after "
            f"{max_rounds} sync rounds; stopping anyway",
            RuntimeWarning,
            stacklevel=2,
        )

    def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        try:
            for worker_id, conn in self._conns.items():
                if worker_id not in self._stopped_workers:
                    try:
                        self.messages_sent += 1
                        self.wire_bytes_sent += send_message(conn, ("stop",))
                    except (BrokenPipeError, OSError):
                        self._stopped_workers.add(worker_id)
            while len(self._stopped_workers) < len(self._conns):
                if not self._service(block=True):
                    break  # timed out; join/terminate below
        finally:
            for proc in self._procs.values():
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=1.0)
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass

    def abort(self) -> None:
        self._stopping = True
        for conn in self._conns.values():
            try:
                send_message(conn, ("abort",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs.values():
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    # Transport -------------------------------------------------------------
    def _send(self, destination: int, message: tuple) -> None:
        if destination == self.my_id:
            self._dispatch(message)
            return
        conn = self._conns[destination]
        self.messages_sent += 1
        self.wire_bytes_sent += send_message(conn, message)

    def _service(self, block: bool) -> bool:
        from multiprocessing.connection import wait as conn_wait

        conns = [
            conn
            for worker_id, conn in self._conns.items()
            if worker_id not in self._stopped_workers
        ]
        if not conns:
            return False
        timeout = (
            self.runtime.config.get_float("runtime.mp_stall_timeout_s")
            if block
            else 0
        )
        ready = conn_wait(conns, timeout)
        if not ready:
            return False
        for conn in ready:
            while True:
                try:
                    data = conn.recv_bytes()
                except (EOFError, OSError):
                    self._mark_dead(conn)
                    break
                self._dispatch(decode_message(data))
                if not conn.poll(0):
                    break
        self.flush()
        return True

    def _mark_dead(self, conn: "Connection") -> None:
        for worker_id, c in self._conns.items():
            if c is conn and worker_id not in self._stopped_workers:
                self._stopped_workers.add(worker_id)
                if not self._stopping:
                    raise RuntimeStateError(
                        f"worker process for locality {worker_id} exited "
                        "unexpectedly (pipe closed)"
                    )

    def _broadcast_create(
        self, origin: int, gid: "Gid", home: int, data: bytes, exclude: int
    ) -> None:
        for worker_id in self._conns:
            if worker_id != exclude and worker_id not in self._stopped_workers:
                self._send(worker_id, ("create", origin, gid, home, data))

    def _dispatch_control(self, message: tuple) -> None:
        kind = message[0]
        if kind == "sync-ack":
            _, seq, worker_id, busy = message
            if seq in self._acks:
                self._acks[seq].add(worker_id)
            self._worker_busy[worker_id] = busy
        elif kind == "stopped":
            _, worker_id, stats = message
            self._worker_stats[worker_id] = stats
            self._stopped_workers.add(worker_id)
        elif kind == "error":
            _, worker_id, text = message
            self._stopped_workers.add(worker_id)
            raise RuntimeStateError(
                f"worker process for locality {worker_id} died:\n{text}"
            )
        else:
            super()._dispatch_control(message)

    # Observability ---------------------------------------------------------
    def worker_stats(self) -> dict[int, dict[str, Any]]:
        return dict(self._worker_stats)

    def counters(self) -> dict[str, float]:
        out = super().counters()
        out["processes"] = float(getattr(self, "processes", 1))
        out["remote_tasks_executed"] = float(
            sum(s.get("tasks_executed", 0) for s in self._worker_stats.values())
        )
        out["remote_parcels_sent"] = float(
            sum(s.get("parcels_sent", 0) for s in self._worker_stats.values())
        )
        return out


class _WorkerBackend(_PipeBackend):
    """Worker side: a single pipe to the driver, which relays everything."""

    name = "multiprocess"

    def __init__(self, conn: "Connection", worker_id: int, config: "Config") -> None:
        super().__init__()
        self._conn = conn
        self.my_id = worker_id
        self._timeout = config.get_float("runtime.mp_stall_timeout_s")
        self._sent_stopped = False

    def attach(self, runtime: "Runtime") -> None:
        super().attach(runtime)
        runtime.agas.broker = self._broker_resolve

    def serve(self) -> None:
        """The worker main loop: drain local work, then block for more."""
        while not self._stopping:
            self._drain_local()
            self._service(block=True)

    def stop(self) -> None:
        if self._sent_stopped:
            return
        self._sent_stopped = True
        try:
            self._send(0, ("stopped", self.my_id, self._stats()))
        except (BrokenPipeError, OSError):  # driver already gone
            pass
        self._stopping = True

    def _stats(self) -> dict[str, Any]:
        runtime = self.runtime
        port = runtime.parcelport
        stats = {
            "locality": self.my_id,
            "tasks_executed": sum(
                loc.pool.tasks_executed for loc in runtime.localities
            ),
            "parcels_sent": port.parcels_sent,
            "parcels_delivered": port.parcels_delivered,
            "bytes_sent": port.bytes_sent,
            "pid": os.getpid(),
        }
        stats.update(self.counters())
        return stats

    # Transport -------------------------------------------------------------
    def _send(self, destination: int, message: tuple) -> None:
        # Everything funnels through the driver, which relays by the
        # destination embedded in the message.
        self.messages_sent += 1
        self.wire_bytes_sent += send_message(self._conn, message)

    def _service(self, block: bool) -> bool:
        conn = self._conn
        if not conn.poll(self._timeout if block else 0):
            return False
        dispatched = False
        while conn.poll(0) or not dispatched:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                self._stopping = True
                raise SystemExit(0) from None
            self._dispatch(decode_message(data))
            dispatched = True
        self.flush()
        return True

    def _broadcast_create(
        self, origin: int, gid: "Gid", home: int, data: bytes, exclude: int
    ) -> None:
        if origin == self.my_id:  # our registration: let the driver fan out
            self._send(0, ("create", origin, gid, home, data))
        # otherwise the driver already broadcast it; nothing to forward.

    def _dispatch_control(self, message: tuple) -> None:
        kind = message[0]
        if kind == "sync":
            self.flush()
            busy = self._busy()
            self._activity = False
            self._send(0, ("sync-ack", message[1], self.my_id, busy))
        elif kind == "stop":
            self._stopping = True
        elif kind == "abort":
            self._stopping = True
            raise SystemExit(0)
        else:
            super()._dispatch_control(message)


def _worker_entry(
    conn: "Connection",
    worker_id: int,
    n_localities: int,
    workers_per_locality: int,
    config_values: dict[str, Any],
) -> None:
    """Worker process main: build a fresh Runtime and serve the pipe.

    Module-level (spawn-picklable) and defensive about forked state: the
    parent's context stack, probes, and replay bracket must not leak into
    this process.
    """
    import traceback

    from ...config import Config
    from .. import context as ctx
    from .. import instrument, replay
    from ..runtime import Runtime

    ctx._stack.clear()
    instrument.probe = None
    if replay.deterministic:
        replay.disable()
    try:
        config = Config.from_mapping(
            {**config_values, "runtime.quiescence": "ignore"}
        )
        backend = _WorkerBackend(conn, worker_id, config)
        runtime = Runtime(
            n_localities=n_localities,
            workers_per_locality=workers_per_locality,
            config=config,
            _backend=backend,
        )
        with runtime:
            backend.serve()
    except SystemExit:
        pass
    except BaseException:
        try:
            send_message(conn, ("error", worker_id, traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
