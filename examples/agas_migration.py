#!/usr/bin/env python3
"""AGAS tour: globally addressed components, parcels, and migration.

ParalleX addresses *objects*, not nodes: work follows data through the
Active Global Address Space, and data can move (migrate) without
invalidating anyone's references.  This example builds a tiny
distributed key-value component, invokes it from other localities
(watching virtual network time accrue), migrates it mid-run, and shows
that callers never notice.

Run:  python examples/agas_migration.py
"""

from repro.runtime import Runtime
from repro.runtime.agas import Component


class KvStore(Component):
    """A globally addressable dictionary with remote-invokable methods."""

    def __init__(self) -> None:
        super().__init__()
        self._data: dict[str, str] = {}
        self.serving_from: list[int] = []  # home locality per request

    def put(self, key: str, value: str) -> None:
        self._data[key] = value
        self.serving_from.append(self.home)

    def get(self, key: str) -> str:
        self.serving_from.append(self.home)
        return self._data[key]

    def size(self) -> int:
        return len(self._data)


def main() -> None:
    with Runtime(machine="xeon-e5-2660v3", n_localities=4, workers_per_locality=2) as rt:
        store = KvStore()
        gid = rt.new_component(store, locality_id=1)
        print(f"registered KvStore as {gid!r}, home = locality 1")

        def workload():
            # Writes arrive as parcels addressed to the GID, wherever it is.
            rt.invoke(gid, "put", "paper", "ParalleX on Arm")
            rt.invoke(gid, "put", "venue", "CLUSTER 2020")
            before = rt.invoke(gid, "get", "paper")

            # Live migration: locality 1 -> locality 3.  The GID is stable.
            rt.agas.migrate(gid, 3)

            # Same GID, no caller-side change; AGAS re-resolves the home.
            rt.invoke(gid, "put", "status", "migrated")
            after = rt.invoke(gid, "get", "status")
            return before, after

        before, after = rt.run(workload)
        print(f"read before migration: {before!r} (served from locality 1)")
        print(f"read after  migration: {after!r} (served from locality 3)")
        print(f"requests served from localities: {store.serving_from}")
        print(f"store size: {store.size()}  |  final home: {rt.agas.home_of(gid)}")
        print(f"virtual network+compute time: {rt.makespan * 1e6:.1f} us")
        assert store.serving_from[-1] == 3 and rt.agas.home_of(gid) == 3


if __name__ == "__main__":
    main()
