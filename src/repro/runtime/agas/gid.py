"""Global identifiers.

An HPX GID is a 128-bit value whose MSB half encodes the locality that
*allocated* the id plus flags, and whose LSB half is a per-locality
counter.  The allocating locality is only a hint -- resolution must go
through AGAS because objects migrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import AgasError

__all__ = ["Gid"]


@dataclass(frozen=True, order=True)
class Gid:
    """An immutable global object identifier."""

    #: Locality that allocated this GID (a hint, not the current home).
    msb_locality: int
    #: Per-locality allocation counter.
    lsb: int

    def __post_init__(self) -> None:
        if self.msb_locality < 0:
            raise AgasError(f"negative locality id {self.msb_locality}")
        if self.lsb <= 0:
            raise AgasError(f"GID lsb must be positive, got {self.lsb}")

    def pack(self) -> int:
        """The 128-bit integer form (64-bit halves)."""
        if self.lsb >= 1 << 64 or self.msb_locality >= 1 << 32:
            raise AgasError("GID fields overflow packed representation")
        return (self.msb_locality << 64) | self.lsb

    @classmethod
    def unpack(cls, packed: int) -> "Gid":
        """Invert :meth:`pack`."""
        if packed < 0:
            raise AgasError("packed GID must be non-negative")
        return cls(msb_locality=packed >> 64, lsb=packed & ((1 << 64) - 1))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gid({{{self.msb_locality:08x}, {self.lsb:016x}}})"
