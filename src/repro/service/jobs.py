"""The job state machine and the durable, idempotent job store.

A :class:`Job` moves through a *strict* state machine::

    pending --> claimed --> running --> done
       |           |           |------> failed
       |           |           |------> cancelled
       |           |           '------> pending   (lease expired / retry)
       |           |------> pending               (lease expired)
       |           |------> cancelled | failed
       '--> cancelled

Terminal states (``done``, ``failed``, ``cancelled``) are absorbing:
once a job is terminal, *every* further transition raises
:class:`~repro.errors.JobStateError`.  Combined with journal-then-apply
write ordering this is what makes terminal states exactly-once across
crashes -- a replayed journal can never re-terminate a job.

The :class:`JobStore` journals every mutation *before* applying it in
memory (see :mod:`repro.service.journal`), and rebuilds itself by
replaying the journal on open.  Submission is idempotent: a resubmit
carrying a ``dedupe_key`` the tenant has already used returns the
existing job instead of creating a new one, so a client that crashed
after submitting but before learning its job id can safely retry.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..errors import JobStateError, JournalCorruptError, UnknownJobError
from .clock import Clock
from .journal import Journal, read_journal

__all__ = ["Job", "JobState", "JobStore", "TERMINAL_STATES"]


class JobState(str, enum.Enum):
    """Lifecycle states of a job."""

    PENDING = "pending"
    CLAIMED = "claimed"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # "pending", not "JobState.PENDING"
        return self.value


#: Absorbing states: a job here never transitions again.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: Legal edges of the state machine.  ``claimed/running -> pending`` are
#: the lease-expiry/retry requeues; everything terminal is absorbing.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.PENDING: frozenset({JobState.CLAIMED, JobState.CANCELLED}),
    JobState.CLAIMED: frozenset(
        {JobState.RUNNING, JobState.PENDING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.PENDING, JobState.CANCELLED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}

#: Job fields a transition record may update alongside the state.
_MUTABLE_FIELDS = frozenset(
    {"attempts", "lease_owner", "lease_expires_at", "not_before", "result", "failure"}
)


@dataclass
class Job:
    """One durable unit of work owned by a tenant."""

    job_id: str
    tenant: str
    kind: str
    params: dict[str, Any]
    dedupe_key: Optional[str]
    max_attempts: int
    submitted_at: float
    state: JobState = JobState.PENDING
    attempts: int = 0
    updated_at: float = 0.0
    lease_owner: Optional[str] = None
    lease_expires_at: Optional[float] = None
    not_before: float = 0.0
    result: Optional[dict[str, Any]] = None
    failure: Optional[str] = None
    history: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_record(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "params": self.params,
            "dedupe_key": self.dedupe_key,
            "max_attempts": self.max_attempts,
            "submitted_at": self.submitted_at,
        }

    def describe(self) -> dict[str, Any]:
        """JSON-safe snapshot (CLI ``status`` / gateway responses)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "params": self.params,
            "dedupe_key": self.dedupe_key,
            "state": self.state.value,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "lease_owner": self.lease_owner,
            "lease_expires_at": self.lease_expires_at,
            "not_before": self.not_before,
            "result": self.result,
            "failure": self.failure,
        }


def _dedupe_index_key(tenant: str, dedupe_key: str) -> str:
    return f"{tenant}\x00{dedupe_key}"


class JobStore:
    """Durable map of jobs, rebuilt from the journal on open.

    Write ordering is journal-then-apply: an operation is appended (and
    fsync'd) before the in-memory state changes, so the journal is never
    *behind* what a client was told.  The converse crash window -- the
    append survived but the process died before applying -- is harmless
    because replay re-applies the record.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        clock: Clock,
        sync: bool = True,
    ) -> None:
        self.path = os.fspath(path)
        self._clock = clock
        self._jobs: dict[str, Job] = {}
        self._dedupe: dict[str, str] = {}
        self._sequence = 0
        records, torn = read_journal(self.path)
        self.replayed_records = len(records)
        self.torn_tail_dropped = torn
        for index, record in enumerate(records):
            try:
                self._apply(record)
            except (JobStateError, UnknownJobError, KeyError, ValueError) as exc:
                raise JournalCorruptError(
                    f"journal record {index} does not replay: {exc}"
                ) from exc
        self._journal = Journal(self.path, sync=sync)

    # ------------------------------------------------------------------
    # replay / apply

    def _apply(self, record: dict[str, Any]) -> Job:
        op = record["op"]
        if op == "submit":
            job = Job(
                job_id=record["job_id"],
                tenant=record["tenant"],
                kind=record["kind"],
                params=dict(record["params"]),
                dedupe_key=record["dedupe_key"],
                max_attempts=int(record["max_attempts"]),
                submitted_at=float(record["submitted_at"]),
                updated_at=float(record["submitted_at"]),
            )
            if job.job_id in self._jobs:
                raise JobStateError(f"duplicate submit for job {job.job_id!r}")
            self._jobs[job.job_id] = job
            if job.dedupe_key is not None:
                self._dedupe[_dedupe_index_key(job.tenant, job.dedupe_key)] = job.job_id
            self._sequence += 1
            return job
        if op == "transition":
            job = self._require(record["job_id"])
            target = JobState(record["to"])
            if target not in _TRANSITIONS[job.state]:
                raise JobStateError(
                    f"job {job.job_id!r} cannot move {job.state} -> {target}"
                    + (" (terminal states are exactly-once)" if job.terminal else "")
                )
            job.state = target
            job.updated_at = float(record["at"])
            job.history.append(target.value)
            for name, value in record.get("set", {}).items():
                if name not in _MUTABLE_FIELDS:
                    raise JobStateError(f"transition may not set field {name!r}")
                setattr(job, name, value)
            return job
        raise JobStateError(f"unknown journal op {op!r}")

    def _require(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"no such job: {job_id!r}") from None

    # ------------------------------------------------------------------
    # mutations (journal-then-apply)

    def submit(
        self,
        tenant: str,
        kind: str,
        params: dict[str, Any],
        *,
        dedupe_key: Optional[str] = None,
        max_attempts: int = 3,
    ) -> tuple[Job, bool]:
        """Create a job, or return the existing one for ``dedupe_key``.

        Returns ``(job, created)``; ``created`` is False on an
        idempotent resubmission (nothing is journalled in that case).
        """
        if not tenant:
            raise ValueError("tenant must be non-empty")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if dedupe_key is not None:
            existing = self._dedupe.get(_dedupe_index_key(tenant, dedupe_key))
            if existing is not None:
                return self._jobs[existing], False
        job_id = self._mint_job_id(tenant, kind, params, dedupe_key)
        record = {
            "op": "submit",
            "job_id": job_id,
            "tenant": tenant,
            "kind": kind,
            "params": params,
            "dedupe_key": dedupe_key,
            "max_attempts": max_attempts,
            "submitted_at": self._clock(),
        }
        self._journal.append(record)
        return self._apply(record), True

    def transition(
        self, job_id: str, target: JobState, **updates: Any
    ) -> Job:
        """Journal and apply one state transition.

        ``updates`` may set lease/retry/result fields (see
        ``_MUTABLE_FIELDS``).  Raises :class:`JobStateError` for an
        illegal edge -- including *any* transition out of a terminal
        state -- before anything touches the journal.
        """
        job = self._require(job_id)
        if target not in _TRANSITIONS[job.state]:
            raise JobStateError(
                f"job {job_id!r} cannot move {job.state} -> {target}"
                + (" (terminal states are exactly-once)" if job.terminal else "")
            )
        unknown = set(updates) - _MUTABLE_FIELDS
        if unknown:
            raise JobStateError(f"transition may not set fields {sorted(unknown)}")
        record = {
            "op": "transition",
            "job_id": job_id,
            "to": target.value,
            "at": self._clock(),
            "set": updates,
        }
        self._journal.append(record)
        return self._apply(record)

    # ------------------------------------------------------------------
    # queries

    def get(self, job_id: str) -> Job:
        return self._require(job_id)

    def jobs(
        self,
        *,
        tenant: Optional[str] = None,
        states: Optional[Iterable[JobState]] = None,
    ) -> list[Job]:
        wanted = frozenset(states) if states is not None else None
        out = [
            job
            for job in self._jobs.values()
            if (tenant is None or job.tenant == tenant)
            and (wanted is None or job.state in wanted)
        ]
        out.sort(key=lambda job: job.job_id)
        return out

    def tenants(self) -> list[str]:
        return sorted({job.tenant for job in self._jobs.values()})

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: object) -> bool:
        return job_id in self._jobs

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _mint_job_id(
        self,
        tenant: str,
        kind: str,
        params: dict[str, Any],
        dedupe_key: Optional[str],
    ) -> str:
        # Sequence + content hash: replay-stable (the sequence is the
        # count of submit records), unique, and wall-clock free.
        blob = json.dumps(
            [tenant, kind, params, dedupe_key], sort_keys=True, default=str
        ).encode("utf-8")
        digest = hashlib.sha256(blob).hexdigest()[:8]
        return f"job-{self._sequence:06d}-{digest}"
