"""Unit tests for report rendering."""

import pytest

from repro.errors import ValidationError
from repro.reporting import (
    Series,
    format_figure,
    format_scientific,
    format_table,
    metrics_payload,
    write_metrics_json,
)


def test_format_table_alignment():
    text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equally wide


def test_format_table_validation():
    with pytest.raises(ValidationError):
        format_table([], [])
    with pytest.raises(ValidationError):
        format_table(["a", "b"], [["only-one"]])


def test_series_accumulates():
    s = Series("x2")
    s.add(1, 1)
    s.add(2, 4)
    assert s.xs() == [1.0, 2.0]
    assert s.ys() == [1.0, 4.0]


def test_format_figure():
    a = Series("a", [(1, 10.0), (2, 20.0)])
    b = Series("b", [(1, 1.5), (2, 2.5)])
    text = format_figure("Fig X", [a, b], xlabel="cores", ylabel="GLUPS")
    assert "Fig X" in text
    assert "cores" in text
    assert "10.000" in text and "2.500" in text


def test_format_figure_mismatched_grid_rejected():
    a = Series("a", [(1, 1.0)])
    b = Series("b", [(2, 1.0)])
    with pytest.raises(ValidationError):
        format_figure("t", [a, b])


def test_format_figure_needs_series():
    with pytest.raises(ValidationError):
        format_figure("t", [])


def test_format_scientific():
    assert format_scientific(0) == "0"
    assert "e10" in format_scientific(3.153e10)


def test_metrics_payload_shapes():
    payload = metrics_payload(counters={"/runtime/uptime": 2})
    assert payload == {
        "schema": "repro-metrics-v1",
        "counters": {"/runtime/uptime": 2.0},
    }
    with pytest.raises(ValidationError):
        metrics_payload()


def test_metrics_payload_summarizes_histogram_likes():
    class FakeHistogram:
        def summary(self):
            return {"count": 3, "mean": 1.0}

    payload = metrics_payload(
        histograms={"obj": FakeHistogram(), "plain": {"count": 1}},
        meta={"run": "demo"},
    )
    assert payload["histograms"] == {
        "obj": {"count": 3, "mean": 1.0},
        "plain": {"count": 1},
    }
    assert payload["meta"] == {"run": "demo"}


def test_write_metrics_json(tmp_path):
    import json

    path = write_metrics_json(
        tmp_path / "run.metrics.json",
        counters={"/runtime/uptime": 1.5},
        meta={"nodes": 2},
    )
    document = json.loads(path.read_text())
    assert document["schema"] == "repro-metrics-v1"
    assert document["counters"] == {"/runtime/uptime": 1.5}
    assert document["meta"] == {"nodes": 2}
