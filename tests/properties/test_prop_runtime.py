"""Property-based tests for the runtime: schedulers, pools, algorithms,
futures composition."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Promise, Runtime, par, when_all
from repro.runtime import context as ctx
from repro.runtime.algorithms import inclusive_scan, reduce_, transform
from repro.runtime.algorithms.partitioner import auto_chunk_size, partition
from repro.runtime.threads.executor import static_chunks
from repro.runtime.threads.hpx_thread import HpxThread
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.threads.scheduler import make_scheduler


@given(
    n_items=st.integers(min_value=0, max_value=500),
    n_chunks=st.integers(min_value=1, max_value=64),
)
def test_static_chunks_partition_properties(n_items, n_chunks):
    chunks = static_chunks(n_items, n_chunks)
    assert len(chunks) == n_chunks
    flat = [i for c in chunks for i in c]
    assert flat == list(range(n_items))  # cover exactly once, in order
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= 1  # balanced


@given(
    start=st.integers(min_value=0, max_value=100),
    length=st.integers(min_value=0, max_value=300),
    chunk=st.integers(min_value=1, max_value=50),
)
def test_partition_covers_range(start, length, chunk):
    chunks = partition(start, start + length, chunk)
    flat = [i for c in chunks for i in c]
    assert flat == list(range(start, start + length))
    assert all(len(c) <= chunk for c in chunks)


@given(
    n_items=st.integers(min_value=0, max_value=10_000),
    n_workers=st.integers(min_value=1, max_value=64),
)
def test_auto_chunk_size_bounds(n_items, n_workers):
    size = auto_chunk_size(n_items, n_workers)
    assert size >= 1
    if n_items:
        n_chunks = -(-n_items // size)
        assert n_chunks <= n_workers * 4 + n_workers  # ~4 chunks per worker


@given(
    scheduler_name=st.sampled_from(["fifo", "static", "work-stealing"]),
    n_workers=st.integers(min_value=1, max_value=8),
    n_tasks=st.integers(min_value=0, max_value=40),
    data=st.data(),
)
@settings(max_examples=60)
def test_every_pushed_task_acquired_exactly_once(
    scheduler_name, n_workers, n_tasks, data
):
    sched = make_scheduler(scheduler_name, n_workers)
    tasks = [HpxThread(lambda: None) for _ in range(n_tasks)]
    for task in tasks:
        hint = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=n_workers - 1))
        )
        sched.push(task, worker_hint=hint)
    acquired = []
    # Drain by cycling workers; every scheduler must eventually yield all
    # tasks to the full worker set.
    idle_rounds = 0
    while idle_rounds < n_workers:
        progressed = False
        for w in range(n_workers):
            task = sched.acquire(w)
            if task is not None:
                acquired.append(task)
                progressed = True
        idle_rounds = 0 if progressed else idle_rounds + 1
    assert len(acquired) == n_tasks
    assert {t.tid for t in acquired} == {t.tid for t in tasks}
    assert len(sched) == 0


@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=30
    ),
    n_workers=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60)
def test_makespan_work_conservation_bounds(costs, n_workers):
    """Virtual makespan obeys the list-scheduling bounds:
    total/P <= makespan <= total/P + max_cost (Graham)."""
    pool = ThreadPool(n_workers)
    for cost in costs:
        pool.submit(lambda c=cost: ctx.add_cost(c))
    makespan = pool.run_all()
    total = sum(costs)
    longest = max(costs, default=0.0)
    assert makespan >= total / n_workers - 1e-9
    assert makespan <= total / n_workers + longest + 1e-9


@given(values=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60))
@settings(max_examples=40, deadline=None)
def test_parallel_reduce_equals_sequential(values):
    with Runtime(workers_per_locality=3) as rt:
        result = rt.run(lambda: reduce_(par, values, 0, operator.add))
    assert result == sum(values)


@given(values=st.lists(st.integers(min_value=-50, max_value=50), max_size=40))
@settings(max_examples=30, deadline=None)
def test_parallel_scan_equals_accumulate(values):
    import itertools

    with Runtime(workers_per_locality=3) as rt:
        result = rt.run(
            lambda: inclusive_scan(par.with_chunk_size(3), values, operator.add)
        )
    assert result == list(itertools.accumulate(values))


@given(values=st.lists(st.text(max_size=5), max_size=30))
@settings(max_examples=30, deadline=None)
def test_parallel_transform_preserves_order(values):
    with Runtime(workers_per_locality=4) as rt:
        result = rt.run(lambda: transform(par, values, str.upper))
    assert result == [v.upper() for v in values]


@given(n=st.integers(min_value=0, max_value=30))
@settings(max_examples=30)
def test_when_all_fires_only_after_all_n(n):
    promises = [Promise() for _ in range(n)]
    combined = when_all([p.get_future() for p in promises])
    for i, promise in enumerate(promises):
        assert combined.is_ready() == (n == i)  # ready iff none left before
        promise.set_value(i)
    assert combined.is_ready()
    assert [f.get() for f in combined.get()] == list(range(n))


@given(values=st.lists(st.integers(), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_future_chains_preserve_values(values):
    with Runtime(workers_per_locality=2) as rt:

        def main():
            future = None
            from repro.runtime import async_

            futures = [async_(lambda v=v: v) for v in values]
            return [f.get() for f in futures]

        assert rt.run(main) == values
