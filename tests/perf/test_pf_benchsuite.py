"""Unit tests for the ``repro bench`` perf-regression harness."""

import json

import pytest

from repro import bench
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def quick_doc():
    """One tiny real suite run shared by the checks below."""
    return bench.run_suite(quick=True, repeats=1)


def test_suite_registry_names():
    expected = {
        "task_spawn",
        "future_roundtrip",
        "dataflow_chain",
        "channel_handoff",
        "fanout_fanin",
        "parcel_storm",
        "parcel_storm_zero_copy",
        "parcel_storm_overload",
        "parcel_storm_batched",
        "fig3_heat1d",
        "fig4_jacobi2d",
        "scaling_cores",
    }
    assert expected == set(bench.SUITE)
    assert set(bench.RUNTIME_MICRO_PARTS) < set(bench.SUITE)


def test_run_suite_document_shape(quick_doc):
    assert quick_doc["schema"] == bench.BENCH_SCHEMA
    assert quick_doc["mode"] == "quick"
    results = quick_doc["results"]
    # Every registered bench ran, plus the micro rollup.
    assert set(bench.SUITE) | {"bench_runtime_micro"} == set(results)
    for name, entry in results.items():
        if "workloads" in entry:  # scaling_cores carries per-P walls instead
            continue
        assert entry["wall_seconds"] > 0, name
        assert entry["samples"], name
    micro = results["bench_runtime_micro"]
    expected_wall = sum(
        results[name]["wall_seconds"] for name in bench.RUNTIME_MICRO_PARTS
    )
    assert micro["wall_seconds"] == pytest.approx(expected_wall)


def test_platform_metadata_recorded(quick_doc):
    plat = quick_doc["platform"]
    assert plat["cpu_count"] >= 1
    assert plat["machine"]
    assert plat["python"] == quick_doc["python"]
    assert plat["backend"] == "virtual"
    assert plat["processes"] == 0


def test_scaling_cores_shape_and_bit_identity(quick_doc):
    scaling = quick_doc["results"]["scaling_cores"]
    assert scaling["processes"] == [1, 2, 4]
    assert scaling["cpu_count"] >= 1
    assert set(scaling["workloads"]) == {"heat1d", "jacobi2d", "parcel_storm"}
    for workload in scaling["workloads"].values():
        assert set(workload["wall_seconds"]) == {"1", "2", "4"}
        assert all(wall > 0 for wall in workload["wall_seconds"].values())
        # The backend contract: the answer is bit-identical at every P.
        assert workload["checksum_identical"]
    assert scaling["checksums_identical"]
    assert scaling["best_speedup_4x"] > 0


def test_run_suite_rejects_unknown_names():
    with pytest.raises(ConfigError, match="unknown benchmark"):
        bench.run_suite(quick=True, names=["no_such_bench"])


def test_parcel_storm_reports_parcels(quick_doc):
    storm = quick_doc["results"]["parcel_storm"]
    assert storm["n_parcels"] and storm["n_parcels"] >= storm["n_tasks"]
    assert storm["parcels_per_sec"] > 0
    assert storm["virtual_makespan"] is not None


def test_zero_copy_storm_makespan_matches_default(quick_doc):
    """The gated fast path must not move the virtual answer."""
    default = quick_doc["results"]["parcel_storm"]
    zero_copy = quick_doc["results"]["parcel_storm_zero_copy"]
    assert zero_copy["virtual_makespan"] == default["virtual_makespan"]
    assert zero_copy["n_parcels"] == default["n_parcels"]


def test_batched_storm_makespan_matches_default(quick_doc):
    """Parcel coalescing must not move the virtual answer either."""
    default = quick_doc["results"]["parcel_storm"]
    batched = quick_doc["results"]["parcel_storm_batched"]
    assert batched["virtual_makespan"] == default["virtual_makespan"]
    assert batched["n_parcels"] == default["n_parcels"]


def test_compare_to_baseline_self_is_clean(quick_doc):
    assert bench.compare_to_baseline(quick_doc, quick_doc) == []


def test_compare_to_baseline_flags_makespan_drift(quick_doc):
    drifted = json.loads(json.dumps(quick_doc))
    entry = drifted["results"]["fig3_heat1d"]
    entry["virtual_makespan"] = entry["virtual_makespan"] + 1.0
    failures = bench.compare_to_baseline(drifted, quick_doc)
    assert any("fig3_heat1d" in f and "makespan" in f for f in failures)


def test_compare_to_baseline_flags_wall_regression(quick_doc):
    slower = json.loads(json.dumps(quick_doc))
    entry = slower["results"]["task_spawn"]
    entry["wall_seconds"] = entry["wall_seconds"] * 2.0
    failures = bench.compare_to_baseline(slower, quick_doc, max_regression=0.25)
    assert any("task_spawn" in f and "regressed" in f for f in failures)
    # A generous threshold lets the same numbers pass.
    assert bench.compare_to_baseline(slower, quick_doc, max_regression=2.0) == []


def test_compare_to_baseline_mode_mismatch_is_config_error(quick_doc):
    full = json.loads(json.dumps(quick_doc))
    full["mode"] = "full"
    with pytest.raises(ConfigError, match="mode"):
        bench.compare_to_baseline(quick_doc, full)


def test_compare_to_baseline_accepts_before_after_artifact(quick_doc):
    artifact = {"before": {}, "after_quick": json.loads(json.dumps(quick_doc))}
    assert bench.compare_to_baseline(quick_doc, artifact) == []


def test_write_and_format(tmp_path, quick_doc):
    path = tmp_path / "bench.json"
    bench.write_bench_json(str(path), quick_doc)
    assert json.loads(path.read_text())["schema"] == bench.BENCH_SCHEMA
    text = bench.format_results(quick_doc)
    assert "task_spawn" in text and "ms" in text


def test_cli_bench_subcommand(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "doc.json"
    code = main(
        ["bench", "--quick", "--repeats", "1", "--only", "task_spawn",
         "--output", str(out)]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    assert "task_spawn" in doc["results"]
    captured = capsys.readouterr()
    assert "task_spawn" in captured.out


def test_cli_bench_baseline_gate(tmp_path):
    from repro.cli import main

    baseline = tmp_path / "base.json"
    doc = bench.run_suite(quick=True, names=["task_spawn"], repeats=1)
    # An impossible baseline (everything instant) must fail the gate ...
    impossible = json.loads(json.dumps(doc))
    impossible["results"]["task_spawn"]["wall_seconds"] = 1e-9
    bench.write_bench_json(str(baseline), impossible)
    code = main(
        ["bench", "--quick", "--repeats", "1", "--only", "task_spawn",
         "--baseline", str(baseline)]
    )
    assert code == 1
    # ... and a self-consistent one must pass.
    bench.write_bench_json(str(baseline), doc)
    code = main(
        ["bench", "--quick", "--repeats", "1", "--only", "task_spawn",
         "--baseline", str(baseline), "--max-regression", "10.0"]
    )
    assert code == 0


def test_compare_to_baseline_fails_on_bench_missing_from_run(quick_doc):
    """A bench present in the baseline but absent from the run is a hard
    failure -- a renamed or dropped bench must not silently pass the gate."""
    pruned = json.loads(json.dumps(quick_doc))
    del pruned["results"]["fanout_fanin"]
    failures = bench.compare_to_baseline(pruned, quick_doc)
    assert any("fanout_fanin" in f and "missing" in f for f in failures)


def test_compare_to_baseline_warns_on_bench_not_in_baseline(quick_doc, capsys):
    """A brand-new bench is not gated yet: loud stderr warning, no failure."""
    extra = json.loads(json.dumps(quick_doc))
    extra["results"]["brand_new_bench"] = dict(extra["results"]["task_spawn"])
    failures = bench.compare_to_baseline(extra, quick_doc)
    assert failures == []
    err = capsys.readouterr().err
    assert "WARNING" in err and "brand_new_bench" in err
