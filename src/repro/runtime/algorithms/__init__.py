"""Parallel algorithms with execution policies (HPX ``hpx::parallel``).

Listing 1 and Listing 2 both drive their stencils through
``hpx::parallel::for_each(policy, begin, end, lambda)``; this package
provides that call surface:

* policies: :data:`seq`, :data:`par`, :data:`simd`, :data:`par_simd`,
  refined with ``.on(executor)`` and ``.with_chunk_size(n)``;
* algorithms: :func:`for_each`, :func:`for_loop`, :func:`transform`,
  :func:`reduce_`, :func:`inclusive_scan` -- plus the fused block
  variants :func:`for_each_block` / :func:`transform_block` (one
  HPX-thread per chunk running a vectorized body over the whole chunk).
"""

from .execution_policy import (
    ExecutionPolicy,
    seq,
    par,
    simd,
    par_simd,
)
from .partitioner import auto_chunk_size, partition
from .algorithms import (
    for_each,
    for_each_block,
    for_loop,
    transform,
    transform_block,
    reduce_,
    inclusive_scan,
)

__all__ = [
    "ExecutionPolicy",
    "seq",
    "par",
    "simd",
    "par_simd",
    "auto_chunk_size",
    "partition",
    "for_each",
    "for_each_block",
    "for_loop",
    "transform",
    "transform_block",
    "reduce_",
    "inclusive_scan",
]
