"""And-gate LCO (HPX ``base_and_gate``): fires when all slots are set.

The and-gate is the LCO HPX uses to assemble scattered contributions
(e.g. partial results arriving as parcels) into one synchronisation
event.  Each participant owns one slot; the gate's future becomes ready
-- carrying the slot values in order -- when every slot has been set.
"""

from __future__ import annotations

from typing import Any

from ...errors import RuntimeStateError
from .. import instrument
from ..futures import Future, Promise

__all__ = ["AndGate"]


class AndGate:
    """``n_slots`` single-assignment slots; ready when all are filled."""

    def __init__(self, n_slots: int) -> None:
        if n_slots < 1:
            raise RuntimeStateError(f"and-gate needs >= 1 slots, got {n_slots}")
        self.n_slots = n_slots
        self._values: list[Any] = [None] * n_slots
        self._filled = [False] * n_slots
        self._remaining = n_slots
        self._promise = Promise()

    @property
    def remaining(self) -> int:
        return self._remaining

    def set(self, slot: int, value: Any = None) -> None:
        """Fill ``slot`` with ``value``; double-fill raises."""
        if not 0 <= slot < self.n_slots:
            raise RuntimeStateError(f"slot {slot} out of range [0, {self.n_slots})")
        if self._filled[slot]:
            raise RuntimeStateError(f"and-gate slot {slot} set twice")
        self._filled[slot] = True
        self._values[slot] = value
        self._remaining -= 1
        probe = instrument.probe
        if probe is not None:
            # Each slot fill contributes its clock: the fired gate is
            # ordered after every contributor, not just the last setter.
            probe.state_contribute(self._promise._state)
            probe.lco_labelled(
                self._promise._state,
                f"and_gate({self.n_slots - self._remaining}/{self.n_slots} slots set)",
            )
        if self._remaining == 0:
            self._promise.set_value(list(self._values))

    def get_future(self) -> Future:
        """Future of the ordered slot values, ready when all are set."""
        return self._promise.get_future()

    def is_ready(self) -> bool:
        return self._remaining == 0

    # Checkpoint protocol ----------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Snapshot the slot values and which slots are filled."""
        return {
            "n_slots": self.n_slots,
            "values": list(self._values),
            "filled": list(self._filled),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild from a :meth:`checkpoint_state` snapshot, in place.

        The promise is replaced (futures handed out before the restore
        belong to the abandoned timeline); a gate restored with every
        slot filled is fired immediately with the restored values.
        """
        self.n_slots = int(state["n_slots"])
        self._values = list(state["values"])
        self._filled = [bool(f) for f in state["filled"]]
        if len(self._values) != self.n_slots or len(self._filled) != self.n_slots:
            raise RuntimeStateError(
                f"and-gate snapshot is inconsistent: {self.n_slots} slots, "
                f"{len(self._values)} values, {len(self._filled)} fill flags"
            )
        self._remaining = self.n_slots - sum(self._filled)
        self._promise = Promise()
        if self._remaining == 0:
            self._promise.set_value(list(self._values))
