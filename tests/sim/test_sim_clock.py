"""Unit tests for the virtual clock."""

import pytest

from repro.errors import SimulationError
from repro.sim import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now == 0.0


def test_starts_at_given_time():
    assert VirtualClock(5.0).now == 5.0


def test_negative_start_rejected():
    with pytest.raises(SimulationError):
        VirtualClock(-1.0)


def test_advance_to_moves_forward():
    clock = VirtualClock()
    assert clock.advance_to(3.5) == 3.5
    assert clock.now == 3.5


def test_advance_to_same_time_is_allowed():
    clock = VirtualClock(2.0)
    assert clock.advance_to(2.0) == 2.0


def test_advance_to_past_rejected():
    clock = VirtualClock(2.0)
    with pytest.raises(SimulationError):
        clock.advance_to(1.0)


def test_advance_by_accumulates():
    clock = VirtualClock()
    clock.advance_by(1.0)
    clock.advance_by(0.5)
    assert clock.now == pytest.approx(1.5)


def test_advance_by_zero_is_noop():
    clock = VirtualClock(1.0)
    clock.advance_by(0.0)
    assert clock.now == 1.0


def test_advance_by_negative_rejected():
    clock = VirtualClock()
    with pytest.raises(SimulationError):
        clock.advance_by(-0.1)


def test_reset():
    clock = VirtualClock(7.0)
    clock.reset()
    assert clock.now == 0.0
    clock.reset(2.0)
    assert clock.now == 2.0


def test_reset_negative_rejected():
    with pytest.raises(SimulationError):
        VirtualClock().reset(-2.0)
