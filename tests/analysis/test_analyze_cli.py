"""The ``repro analyze`` CLI surface."""

import json

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_analyze_races_and_deadlocks_clean_demo(capsys):
    code, out = run_cli(
        capsys, "analyze", "--races", "--deadlocks", "--nodes", "2", "--steps", "3"
    )
    assert code == 0
    assert "races: none" in out
    assert "deadlocks: none" in out


def test_analyze_scheduler_flag(capsys):
    code, out = run_cli(
        capsys, "analyze", "--races", "--scheduler", "fifo", "--steps", "2"
    )
    assert code == 0
    assert "fifo scheduler" in out


def test_analyze_lint_clean_tree(capsys):
    code, out = run_cli(capsys, "analyze", "--lint", "src")
    assert code == 0


def test_analyze_lint_findings_exit_nonzero(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    code, out = run_cli(capsys, "analyze", "--lint", str(bad))
    assert code == 1
    assert "PX501" in out


def test_analyze_lint_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x=[]):\n    return x\n")
    code, out = run_cli(capsys, "analyze", "--lint", "--json", str(bad))
    assert code == 1
    assert json.loads(out)[0]["code"] == "PX501"


def test_analyze_explore_single_app_clean(capsys):
    code, out = run_cli(
        capsys, "analyze", "--explore", "--app", "heat1d", "--budget", "8"
    )
    assert code == 0
    assert "heat1d [dpor]" in out
    assert "no violations" in out


def test_analyze_explore_finds_corpus_bug_and_writes_replay(tmp_path, capsys):
    import corpus  # noqa: F401 - registers the corpus apps

    replay_dir = tmp_path / "replays"
    code, out = run_cli(
        capsys,
        "analyze",
        "--explore",
        "--app",
        "corpus/race_hidden",
        "--replay-dir",
        str(replay_dir),
    )
    assert code == 1
    assert "[race]" in out
    replay_file = replay_dir / "corpus_race_hidden.replay.json"
    assert replay_file.exists()

    code, out = run_cli(capsys, "analyze", "--replay", str(replay_file))
    assert code == 0
    assert "reproduced bit-identically" in out


def test_analyze_explore_deadlock_writes_dot(tmp_path, capsys):
    import corpus  # noqa: F401 - registers the corpus apps

    dot = tmp_path / "waitfor.dot"
    code, out = run_cli(
        capsys,
        "analyze",
        "--explore",
        "--app",
        "corpus/andgate_deadlock",
        "--dot",
        str(dot),
    )
    assert code == 1
    assert "[deadlock]" in out
    assert dot.read_text().startswith("digraph")
    assert "->" in dot.read_text()


def test_analyze_deadlocks_dot_export(tmp_path, capsys):
    dot = tmp_path / "demo.dot"
    code, out = run_cli(
        capsys, "analyze", "--deadlocks", "--steps", "2", "--dot", str(dot)
    )
    assert code == 0
    assert "wait-graph DOT written" in out
    assert dot.read_text().startswith("digraph")


def test_analyze_lint_select_ignore_and_fix(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import os\n\ndef f(x=[]):\n    return x\n")
    code, out = run_cli(
        capsys, "analyze", "--lint", "--ignore", "PX501,PX601", str(bad)
    )
    assert code == 0
    code, out = run_cli(
        capsys, "analyze", "--lint", "--fix", "--select", "PX601", str(bad)
    )
    assert code == 0
    assert "import os" not in bad.read_text()
