"""Acceptance tests: the distributed heat solver on a faulty substrate.

These are the ISSUE's acceptance criteria: a seeded 5% parcel-drop
schedule with retries converges bit-identically to the fault-free run;
the same schedule with retries disabled surfaces
:class:`ParcelDeadLetterError`; and two same-seed runs produce identical
virtual-time traces (makespan + counters + solution).
"""

import numpy as np
import pytest

from repro.config import Config
from repro.errors import ParcelDeadLetterError
from repro.resilience import FaultInjector
from repro.runtime import perfcounters
from repro.runtime.runtime import Runtime
from repro.stencil.heat1d import DistributedHeat1D, Heat1DParams, heat1d_reference

NX, STEPS = 64, 25
U0 = np.sin(np.linspace(0.0, 2.0 * np.pi, NX, endpoint=False))
REFERENCE = heat1d_reference(U0, STEPS, Heat1DParams())


def _run(injector=None, config=None, resilient=False, steps=STEPS, n_localities=2):
    with Runtime(
        machine="xeon-e5-2660v3",
        n_localities=n_localities,
        workers_per_locality=2,
        fault_injector=injector,
        config=config,
    ) as rt:
        solver = DistributedHeat1D(rt, NX, Heat1DParams())
        solver.initialize(U0)
        solution = (
            solver.run_resilient(steps) if resilient else solver.run(steps)
        )
        port = rt.parcelport
        trace = {
            "makespan": rt.makespan,
            "sent": port.parcels_sent,
            "dropped": port.parcels_dropped,
            "retried": port.parcels_retried,
            "dead": port.parcels_dead_lettered,
            "duplicated": port.parcels_duplicated,
            "delayed": port.parcels_delayed,
        }
        counters = {
            path: perfcounters.query(rt, path)
            for path in perfcounters.discover(rt)
            if path.startswith(("/parcels", "/localities"))
        }
    return solution, trace, counters


def test_five_percent_drop_with_retry_is_bit_identical():
    clean, clean_trace, _ = _run()
    faulty, trace, _ = _run(FaultInjector(seed=42, drop_rate=0.05))
    assert np.array_equal(faulty, clean)
    assert np.array_equal(faulty, REFERENCE)
    assert trace["dropped"] > 0
    assert trace["retried"] == trace["dropped"]  # every loss was bridged
    assert trace["dead"] == 0
    # Retransmissions cost virtual time: the faulty run is strictly slower.
    assert trace["makespan"] > clean_trace["makespan"]


def test_same_schedule_with_retry_disabled_dead_letters():
    with pytest.raises(ParcelDeadLetterError):
        _run(
            FaultInjector(seed=42, drop_rate=0.05),
            config=Config(parcel__retry=False),
        )


def test_same_seed_runs_produce_identical_traces():
    sol_a, trace_a, counters_a = _run(
        FaultInjector(seed=7, drop_rate=0.05, duplicate_rate=0.03)
    )
    sol_b, trace_b, counters_b = _run(
        FaultInjector(seed=7, drop_rate=0.05, duplicate_rate=0.03)
    )
    assert np.array_equal(sol_a, sol_b)
    assert trace_a == trace_b  # exact: makespan and every counter
    assert counters_a == counters_b


def test_different_seeds_produce_different_schedules():
    _, trace_a, _ = _run(FaultInjector(seed=1, drop_rate=0.08))
    _, trace_b, _ = _run(FaultInjector(seed=2, drop_rate=0.08))
    assert trace_a != trace_b


def test_locality_outage_recovery():
    injector = FaultInjector(seed=7).fail_locality(1, at=1e-5, until=3e-5)
    solution, trace, counters = _run(injector, resilient=True)
    assert np.array_equal(solution, REFERENCE)
    assert trace["dropped"] > 0  # parcels died against the downed node
    assert counters["/localities{total}/count/failed"] == 1.0


def test_recovery_survives_dead_letters():
    """Tiny retry budget + heavy loss: transparent retries are not enough,
    the application-level recovery rounds must bridge the gaps."""
    solution, trace, _ = _run(
        FaultInjector(seed=7, drop_rate=0.15),
        config=Config(parcel__retry_max_attempts=2),
        resilient=True,
    )
    assert np.array_equal(solution, REFERENCE)
    assert trace["dead"] > 0  # recovery actually had work to do


def test_recovery_without_transparent_retry():
    solution, _, _ = _run(
        FaultInjector(seed=3, drop_rate=0.08),
        config=Config(parcel__retry=False),
        resilient=True,
    )
    assert np.array_equal(solution, REFERENCE)


def test_mixed_fault_kinds_four_localities():
    injector = FaultInjector(
        seed=5, drop_rate=0.06, duplicate_rate=0.04, delay_rate=0.05,
        delay_spike_s=5e-5,
    )
    solution, trace, _ = _run(injector, resilient=True, n_localities=4)
    assert np.array_equal(solution, REFERENCE)
    assert trace["duplicated"] > 0 and trace["delayed"] > 0


def test_run_resilient_on_clean_runtime_matches_run():
    clean, _, _ = _run()
    resilient, _, _ = _run(resilient=True)
    assert np.array_equal(resilient, clean)


# Perfcounter surfacing (satellite) --------------------------------------------

def test_fault_counters_discoverable_and_queryable():
    _, trace, counters = _run(FaultInjector(seed=42, drop_rate=0.05))
    assert counters["/parcels{total}/count/dropped"] == trace["dropped"]
    assert counters["/parcels{total}/count/retried"] == trace["retried"]
    assert counters["/parcels{total}/count/dead-lettered"] == 0.0
    assert counters["/localities{total}/count/failed"] == 0.0


def test_discover_lists_fault_counters():
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        paths = perfcounters.discover(rt)
    for suffix in ("dropped", "corrupted", "duplicated", "delayed", "retried",
                   "dead-lettered"):
        assert f"/parcels{{total}}/count/{suffix}" in paths
    assert "/localities{total}/count/failed" in paths
