"""Time-bounded job leases and the bounded retry budget.

Claiming a job grants a :class:`Lease`: a promise that one worker owns
the job until ``expires_at``.  Ownership is *temporal*, not structural
-- a worker that is SIGKILLed cannot release anything, so the only way
its job ever runs again is that its lease silently expires and the
service requeues the job.  Workers that are merely slow must renew
before expiry; a renewal after expiry is refused, which keeps two
workers from both believing they own the job.

Retries are bounded twice: a job gets at most ``max_attempts`` drives,
and consecutive attempts are separated by capped exponential backoff
(:class:`RetryBudget`) so a crashing workload cannot hot-loop the
service.  When the budget is exhausted the job is failed *with cause*
rather than retried forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError, JobStateError
from .clock import Clock

__all__ = ["Lease", "LeaseManager", "RetryBudget"]


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded claim on one job."""

    job_id: str
    owner: str
    granted_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class LeaseManager:
    """Grants, renews, releases, and harvests expired leases.

    Purely in-memory: durable lease fields live on the job records (the
    store journals ``lease_owner``/``lease_expires_at`` with each
    claim), and recovery rebuilds or discards leases from there.
    """

    def __init__(self, clock: Clock, *, lease_seconds: float) -> None:
        if lease_seconds <= 0:
            raise ConfigError("lease_seconds must be positive")
        self._clock = clock
        self.lease_seconds = lease_seconds
        self._leases: dict[str, Lease] = {}

    def grant(self, job_id: str, owner: str) -> Lease:
        now = self._clock()
        current = self._leases.get(job_id)
        if current is not None and not current.expired(now):
            raise JobStateError(
                f"job {job_id!r} is already leased to {current.owner!r}"
            )
        lease = Lease(
            job_id=job_id,
            owner=owner,
            granted_at=now,
            expires_at=now + self.lease_seconds,
        )
        self._leases[job_id] = lease
        return lease

    def renew(self, job_id: str, owner: str) -> Lease:
        """Extend a live lease; refuses expired or foreign leases."""
        now = self._clock()
        current = self._leases.get(job_id)
        if current is None or current.owner != owner:
            raise JobStateError(f"{owner!r} holds no lease on job {job_id!r}")
        if current.expired(now):
            raise JobStateError(
                f"lease on job {job_id!r} expired at {current.expires_at:.3f}; "
                f"the job may already belong to someone else"
            )
        lease = Lease(
            job_id=job_id,
            owner=owner,
            granted_at=current.granted_at,
            expires_at=now + self.lease_seconds,
        )
        self._leases[job_id] = lease
        return lease

    def release(self, job_id: str, owner: str) -> None:
        current = self._leases.get(job_id)
        if current is not None and current.owner == owner:
            del self._leases[job_id]

    def revoke(self, job_id: str) -> None:
        """Drop any lease unconditionally (recovery / cancellation)."""
        self._leases.pop(job_id, None)

    def holder(self, job_id: str) -> Optional[Lease]:
        return self._leases.get(job_id)

    def expired(self) -> list[Lease]:
        """Harvest (and drop) every lease that has passed its expiry."""
        now = self._clock()
        dead = [lease for lease in self._leases.values() if lease.expired(now)]
        for lease in dead:
            del self._leases[lease.job_id]
        dead.sort(key=lambda lease: lease.job_id)
        return dead

    def __len__(self) -> int:
        return len(self._leases)


class RetryBudget:
    """Capped exponential backoff over a bounded attempt count."""

    def __init__(
        self,
        *,
        base_seconds: float = 0.5,
        factor: float = 2.0,
        cap_seconds: float = 30.0,
    ) -> None:
        if base_seconds <= 0:
            raise ConfigError("base_seconds must be positive")
        if factor < 1.0:
            raise ConfigError("factor must be >= 1")
        if cap_seconds < base_seconds:
            raise ConfigError("cap_seconds must be >= base_seconds")
        self.base_seconds = base_seconds
        self.factor = factor
        self.cap_seconds = cap_seconds

    def delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (0-based failures).

        ``delay(0)`` follows the first failure.  Grows geometrically and
        saturates at ``cap_seconds``.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(self.cap_seconds, self.base_seconds * self.factor**attempt)

    def exhausted(self, attempts: int, max_attempts: int) -> bool:
        return attempts >= max_attempts
