"""Observability: trace export, counter sampling, latency histograms.

The paper's Sec. VII argument is built on *introspection* -- hardware
and runtime counters explain why each platform performs as it does, and
HPX's APEX/perf-counter facility is how that data is collected in
practice.  This package turns the raw recorders of
:mod:`repro.runtime.trace` and :mod:`repro.runtime.perfcounters` into a
usable observability layer:

* :mod:`~repro.observability.chrome_trace` -- export a
  :class:`~repro.runtime.trace.Tracer`'s timeline as Chrome
  trace-event JSON (Perfetto / ``chrome://tracing``), with flow arrows
  linking each parcel's send to its handler task.
* :mod:`~repro.observability.sampling` -- an
  ``--hpx:print-counter-interval`` analogue: snapshot any set of
  counter paths every Δt of *virtual* time and emit a CSV/JSON time
  series.
* :mod:`~repro.observability.histograms` -- latency distributions
  (task duration, queue delay, parcel latency) with p50/p95/p99
  summaries.
* :mod:`~repro.observability.metrics` -- one-call collection of the
  standard counters + histogram summaries into a JSON-ready dict, the
  artifact benchmarks write next to their figures.

See ``docs/observability.md`` for the guided tour.
"""

from .chrome_trace import chrome_trace_events, export_chrome_trace
from .histograms import (
    Histogram,
    latency_histograms,
    parcel_latency_histogram,
    queue_delay_histogram,
    task_duration_histogram,
)
from .metrics import STANDARD_COUNTERS, collect_metrics
from .sampling import CounterTimeSeries, sample_counters

__all__ = [
    "chrome_trace_events",
    "export_chrome_trace",
    "Histogram",
    "task_duration_histogram",
    "queue_delay_histogram",
    "parcel_latency_histogram",
    "latency_histograms",
    "STANDARD_COUNTERS",
    "collect_metrics",
    "CounterTimeSeries",
    "sample_counters",
]
