"""Unit tests for the cooperative thread pool and its virtual clock."""

import pytest

from repro.errors import DeadlockError, RuntimeStateError
from repro.runtime import context as ctx
from repro.runtime.threads.pool import ThreadPool


def test_submit_and_run_all():
    pool = ThreadPool(2)
    results = []
    pool.submit(lambda: results.append(1))
    pool.submit(lambda: results.append(2))
    pool.run_all()
    assert sorted(results) == [1, 2]
    assert pool.tasks_executed == 2


def test_future_value():
    pool = ThreadPool(1)
    future = pool.submit(lambda: 6 * 7)
    pool.run_all()
    assert future.get() == 42


def test_submit_with_args_and_kwargs():
    pool = ThreadPool(1)
    future = pool.submit(lambda a, b=0: a + b, 1, kwargs={"b": 2})
    pool.run_all()
    assert future.get() == 3


def test_pool_validation():
    with pytest.raises(RuntimeStateError):
        ThreadPool(0)
    with pytest.raises(RuntimeStateError):
        ThreadPool(2, core_ids=[1])


def test_exception_goes_to_future_and_failures():
    pool = ThreadPool(1)

    def boom():
        raise ValueError("boom")

    future = pool.submit(boom)
    pool.run_all()
    with pytest.raises(ValueError):
        future.get()
    assert len(pool.failures) == 1


def test_virtual_time_parallel_tasks():
    """Two 1-second tasks on two workers finish at t=1, not t=2."""
    pool = ThreadPool(2)

    def work():
        ctx.add_cost(1.0)

    pool.submit(work)
    pool.submit(work)
    assert pool.run_all() == pytest.approx(1.0)


def test_virtual_time_serialized_on_one_worker():
    pool = ThreadPool(1)

    def work():
        ctx.add_cost(1.0)

    pool.submit(work)
    pool.submit(work)
    assert pool.run_all() == pytest.approx(2.0)


def test_load_balance_across_workers():
    """8 x 1s tasks on 4 workers -> makespan 2s (list scheduling)."""
    pool = ThreadPool(4)
    for _ in range(8):
        pool.submit(lambda: ctx.add_cost(1.0))
    assert pool.run_all() == pytest.approx(2.0)


def test_dependency_delays_finish_time():
    """A consumer that reads a future cannot finish before the producer."""
    pool = ThreadPool(2)

    def producer():
        ctx.add_cost(5.0)
        return "data"

    producer_future = pool.submit(producer)

    def consumer():
        value = producer_future.get()
        ctx.add_cost(1.0)
        return value

    consumer_future = pool.submit(consumer)
    makespan = pool.run_all()
    assert consumer_future.get() == "data"
    # Producer finishes at 5, consumer adds 1 after its dependency.
    assert makespan == pytest.approx(6.0)


def test_ready_time_respected():
    pool = ThreadPool(1)
    pool.submit(lambda: ctx.add_cost(1.0), ready_time=10.0)
    assert pool.run_all() == pytest.approx(11.0)


def test_worker_pinning():
    pool = ThreadPool(2, scheduler="static")
    seen = []

    def record():
        seen.append(ctx.current().worker_id)

    pool.submit(record, worker=1)
    pool.submit(record, worker=1)
    pool.run_all()
    assert seen == [1, 1]


def test_blocking_get_helps_scheduler():
    pool = ThreadPool(1)

    def child():
        return 5

    def parent():
        return pool.submit(child).get() * 2

    future = pool.submit(parent)
    pool.run_all()
    assert future.get() == 10


def test_deadlock_detection():
    from repro.runtime.futures import Promise

    pool = ThreadPool(1)
    orphan = Promise().get_future()
    failed = pool.submit(lambda: orphan.get())
    pool.run_all()
    with pytest.raises((DeadlockError, Exception)):
        failed.get()
    assert pool.failures, "the blocked task must be recorded as failed"
    assert isinstance(pool.failures[0][1], DeadlockError)


def test_steals_counted():
    pool = ThreadPool(2, scheduler="work-stealing")
    # Pin everything to worker 0's queue; worker 1 must steal.
    for _ in range(4):
        pool.submit(lambda: ctx.add_cost(1.0), worker=0)
    pool.run_all()
    assert pool.steals > 0


def test_fifo_pool_has_no_steals():
    pool = ThreadPool(2, scheduler="fifo")
    pool.submit(lambda: None)
    pool.run_all()
    assert pool.steals == 0


def test_reset_clock():
    pool = ThreadPool(1)
    pool.submit(lambda: ctx.add_cost(3.0))
    pool.run_all()
    pool.reset_clock()
    assert pool.makespan == 0.0


def test_reset_clock_with_pending_rejected():
    pool = ThreadPool(1)
    pool.submit(lambda: None)
    with pytest.raises(RuntimeStateError):
        pool.reset_clock()


def test_children_inherit_parent_virtual_time():
    pool = ThreadPool(2)

    def parent():
        ctx.add_cost(4.0)
        pool.submit(lambda: ctx.add_cost(1.0))

    pool.submit(parent)
    # Child becomes ready at t=4 and runs 1s -> makespan 5.
    assert pool.run_all() == pytest.approx(5.0)


def test_now_outside_tasks_is_makespan():
    pool = ThreadPool(1)
    pool.submit(lambda: ctx.add_cost(2.0))
    pool.run_all()
    assert pool.now == pytest.approx(2.0)
