"""Job-service storm microbenchmarks: the price of durability.

Three costs the job service pays for its crash-safety claims, measured
separately so regressions point at the layer that moved:

* **submission** -- journal-then-apply appends, with and without the
  per-record ``fsync`` (``sync_journal``).  The fsync is the durability
  guarantee; this pair quantifies exactly what it costs relative to the
  OS-buffered variant used by tests.
* **drain** -- claim/start/complete cycles through the full service
  (fair scheduler, leases, admission control, counters) using the
  zero-work ``faulty`` kind, so the measured time is pure service
  overhead rather than stencil arithmetic.
* **replay** -- reopening a store whose journal holds thousands of
  records; recovery time is a startup cost every crash-restart pays.
"""

import itertools

from repro.service import JobService, JobStore, ManualClock, ServicePolicy, TenantQuota

SUBMITS = 200
DRAIN_JOBS = 50
REPLAY_RECORDS = 2000

_ROUND = itertools.count()


def _fresh(tmp_path):
    return tmp_path / f"round-{next(_ROUND)}"


def _submit_many(root, sync: bool) -> int:
    with JobStore(root / "jobs.journal", clock=ManualClock(), sync=sync) as store:
        for i in range(SUBMITS):
            store.submit("tenant", "faulty", {"i": i})
        return len(store)


def test_submit_throughput_buffered(benchmark, tmp_path):
    count = benchmark(lambda: _submit_many(_fresh(tmp_path), sync=False))
    assert count == SUBMITS


def test_submit_throughput_fsynced(benchmark, tmp_path):
    """The durable configuration: one fsync per accepted record."""
    count = benchmark(lambda: _submit_many(_fresh(tmp_path), sync=True))
    assert count == SUBMITS


def _drain(root) -> int:
    policy = ServicePolicy(sync_journal=False)
    with JobService(root, clock=ManualClock(), policy=policy) as service:
        service.set_quota("tenant", TenantQuota(max_pending=2 * DRAIN_JOBS))
        for i in range(DRAIN_JOBS):
            service.submit("tenant", "faulty", {})
        return service.drain("bench-worker")


def test_drain_throughput(benchmark, tmp_path):
    settled = benchmark(lambda: _drain(_fresh(tmp_path)))
    assert settled == DRAIN_JOBS


def test_replay_cost(benchmark, tmp_path):
    # One journal, written once; every benchmark round replays it.
    path = tmp_path / "jobs.journal"
    with JobStore(path, clock=ManualClock(), sync=False) as store:
        for i in range(REPLAY_RECORDS):
            store.submit("tenant", "faulty", {"i": i})

    def replay() -> int:
        with JobStore(path, clock=ManualClock(), sync=False) as replayed:
            return len(replayed)

    assert benchmark(replay) == REPLAY_RECORDS
