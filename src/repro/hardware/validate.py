"""Calibration self-checks.

Every machine model carries calibration constants; a typo in one number
would silently bend every downstream exhibit.  :func:`validate_machine`
checks the internal-consistency invariants that must hold for *any*
sane calibration, and :func:`validate_all` sweeps the registry.  The
test suite runs these, and downstream users who add machine models
should too.
"""

from __future__ import annotations

from ..errors import ValidationError
from .registry import MachineModel, machine, machine_names

__all__ = ["validate_machine", "validate_all"]


def validate_machine(model: MachineModel) -> list[str]:
    """Return a list of violated invariants (empty = valid)."""
    problems: list[str] = []
    spec = model.spec
    cal = model.calibration

    # Topology consistency.
    if model.topology.n_cores != spec.cores_per_node:
        problems.append("topology core count != spec cores_per_node")
    if len(model.topology.domains) != spec.numa_domains:
        problems.append("topology domain count != spec numa_domains")

    # Memory model sanity.
    dm = model.memory.domain_model
    if dm.per_core_gbs > dm.peak_gbs:
        problems.append("per-core bandwidth exceeds domain peak")
    if dm.per_core_gbs * spec.cores_per_domain < dm.peak_gbs:
        problems.append(
            "domain peak unreachable: full domain delivers less than peak"
        )

    # Calibration ranges.
    for fraction_name in ("stencil2d_efficiency", "stencil1d_efficiency"):
        value = getattr(cal, fraction_name)
        if not 0.0 < value <= 1.0:
            problems.append(f"{fraction_name} outside (0, 1]: {value}")
    if cal.per_step_overhead_s < 0:
        problems.append("negative per-step overhead")

    # Single-core rates: all four variants present, positive, simd >= auto,
    # and none above the single-core memory ceiling by more than the
    # documented headroom (rates may exceed the ceiling -- the roofline
    # caps them -- but a 10x excess would be a typo).
    for dtype in ("float32", "float64"):
        for mode in ("auto", "simd"):
            key = (dtype, mode)
            if key not in cal.single_core_glups:
                problems.append(f"missing single-core rate for {key}")
                continue
            if cal.single_core_glups[key] <= 0:
                problems.append(f"non-positive rate for {key}")
        if (dtype, "simd") in cal.single_core_glups and (
            dtype,
            "auto",
        ) in cal.single_core_glups:
            if cal.single_core_glups[(dtype, "simd")] < cal.single_core_glups[
                (dtype, "auto")
            ]:
                problems.append(f"simd rate below auto rate for {dtype}")
            elem = 4 if dtype == "float32" else 8
            ceiling = dm.per_core_gbs / (2 * elem)  # best case: 2 transfers
            if cal.single_core_glups[(dtype, "simd")] > 10 * ceiling:
                problems.append(
                    f"{dtype} simd rate {cal.single_core_glups[(dtype, 'simd')]} "
                    f"wildly above the bandwidth ceiling {ceiling:.2f}"
                )

    # Blocking flags consistent with the switch threshold.
    if cal.blocking_doubles_from_cores and not cal.blocking_doubles:
        problems.append("blocking_doubles_from_cores set but blocking_doubles off")
    if cal.blocking_doubles_from_cores > spec.cores_per_node:
        problems.append("blocking switch beyond the node's core count")

    # Interconnect sanity.
    if model.interconnect.effective_bandwidth_gbs <= 0:
        problems.append("non-positive effective network bandwidth")

    return problems


def validate_all() -> None:
    """Raise :class:`ValidationError` if any registered machine is
    inconsistent."""
    failures = {}
    for name in machine_names():
        problems = validate_machine(machine(name))
        if problems:
            failures[name] = problems
    if failures:
        raise ValidationError(f"calibration inconsistencies: {failures!r}")
