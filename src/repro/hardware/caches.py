"""Cache hierarchy model.

The paper's roofline analysis hinges on one cache question: *how many main
memory transfers does one stencil lattice-site update cost?*  Under the
"three rows fit in cache" assumption a 5-point update streams three rows in
and one out, but with write-allocate the store also reads its line, and the
paper folds this into "three transfers per iteration" (24 B/LUP for
doubles).  Large cache lines (A64FX's 256 B) plus hardware prefetch give the
effect of cache blocking and cut this to two transfers per iteration -- the
paper's "Expected Peak Max" and the observed ~49 % boost.

:class:`CacheHierarchy` answers exactly that question for a given row size
and element width, and exposes the classic miss-count estimate used by the
counter model (Tables III-VI).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One cache level (sizes are per the sharing group)."""

    name: str
    size_bytes: int
    line_bytes: int
    shared_by_cores: int = 1
    latency_cycles: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise TopologyError(f"{self.name}: sizes must be positive")
        if self.size_bytes % self.line_bytes != 0:
            raise TopologyError(f"{self.name}: size not a multiple of line size")
        if self.shared_by_cores < 1:
            raise TopologyError(f"{self.name}: shared_by_cores must be >= 1")

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def size_per_core(self) -> int:
        """Effective capacity available to one core when all sharers stream."""
        return self.size_bytes // self.shared_by_cores


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered tuple of cache levels, L1 first."""

    levels: tuple[CacheLevel, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise TopologyError("cache hierarchy needs at least one level")

    @property
    def l1(self) -> CacheLevel:
        return self.levels[0]

    @property
    def last_level(self) -> CacheLevel:
        return self.levels[-1]

    @property
    def line_bytes(self) -> int:
        """Line size used for memory traffic (the L1/L2 line)."""
        return self.l1.line_bytes

    def effective_capacity_per_core(self) -> int:
        """Capacity one core can count on for row reuse.

        The paper's wording is "assuming the cache size is large enough to
        accommodate three rows of the grid"; in a strong-scaling run every
        core streams, so shared levels are divided among their sharers.
        """
        return max(level.size_per_core() for level in self.levels)

    # Stencil traffic analysis ---------------------------------------------
    def rows_fit(self, row_bytes: int, n_rows: int = 3) -> bool:
        """Do ``n_rows`` rows of ``row_bytes`` fit in per-core capacity?"""
        if row_bytes <= 0:
            raise TopologyError("row_bytes must be positive")
        return n_rows * row_bytes <= self.effective_capacity_per_core()

    def stencil_transfers_per_update(
        self, row_bytes: int, elem_bytes: int, prefetch_blocking: bool = False
    ) -> float:
        """Main-memory bytes per lattice-site update for a 5-point stencil.

        * rows do not fit at all  -> 5 transfers (every neighbour misses),
        * three rows fit (paper's baseline assumption) -> 3 transfers
          (one streamed read of the new row + write-allocate + write-back),
        * ``prefetch_blocking`` (large cache line + prefetcher, A64FX/TX2
          behaviour the paper observed) -> 2 transfers.

        Returns bytes/LUP (= transfers * elem_bytes).
        """
        if elem_bytes <= 0:
            raise TopologyError("elem_bytes must be positive")
        if not self.rows_fit(row_bytes, 3):
            transfers = 5.0
        elif prefetch_blocking:
            transfers = 2.0
        else:
            transfers = 3.0
        return transfers * elem_bytes

    def stream_misses(self, bytes_streamed: int) -> int:
        """Cold/streaming miss count for ``bytes_streamed`` of traffic."""
        if bytes_streamed < 0:
            raise TopologyError("bytes_streamed must be non-negative")
        line = self.line_bytes
        return -(-bytes_streamed // line)  # ceil division
