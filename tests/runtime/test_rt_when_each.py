"""Tests for when_each and future unwrapping."""

import pytest

from repro.errors import FutureNotReadyError
from repro.runtime import Promise, async_, make_ready_future, unwrap, when_each


class TestWhenEach:
    def test_callbacks_fire_in_completion_order(self):
        promises = [Promise() for _ in range(3)]
        seen = []
        done = when_each(
            [p.get_future() for p in promises],
            lambda i, f: seen.append((i, f.get_nowait())),
        )
        promises[2].set_value("c")
        promises[0].set_value("a")
        promises[1].set_value("b")
        assert seen == [(2, "c"), (0, "a"), (1, "b")]
        assert done.is_ready()

    def test_empty_input_completes_immediately(self):
        assert when_each([], lambda i, f: None).is_ready()

    def test_completes_only_after_last(self):
        promises = [Promise() for _ in range(2)]
        done = when_each([p.get_future() for p in promises], lambda i, f: None)
        promises[0].set_value(1)
        assert not done.is_ready()
        promises[1].set_value(2)
        assert done.is_ready()

    def test_callback_exception_does_not_wedge_completion(self):
        promises = [Promise() for _ in range(2)]

        def fussy(i, f):
            if i == 0:
                raise RuntimeError("callback bug")

        done = when_each([p.get_future() for p in promises], fussy)
        with pytest.raises(RuntimeError):
            promises[0].set_value(1)
        promises[1].set_value(2)
        assert done.is_ready()

    def test_in_runtime_with_tasks(self, rt):
        order = []

        def main():
            futures = [async_(lambda i=i: i * i) for i in range(5)]
            when_each(futures, lambda i, f: order.append(f.get_nowait())).get()
            return sorted(order)

        assert rt.run(main) == [0, 1, 4, 9, 16]


class TestUnwrap:
    def test_flattens_nested_future(self):
        inner = make_ready_future(42)
        outer = make_ready_future(inner)
        assert unwrap(outer).get() == 42

    def test_passes_through_flat_values(self):
        assert unwrap(make_ready_future("plain")).get() == "plain"

    def test_pending_outer_then_inner(self):
        outer_promise, inner_promise = Promise(), Promise()
        flat = unwrap(outer_promise.get_future())
        assert not flat.is_ready()
        outer_promise.set_value(inner_promise.get_future())
        assert not flat.is_ready()
        inner_promise.set_value(7)
        assert flat.get() == 7

    def test_outer_exception_propagates(self):
        promise = Promise()
        flat = unwrap(promise.get_future())
        promise.set_exception(KeyError("outer"))
        with pytest.raises(KeyError):
            flat.get()

    def test_inner_exception_propagates(self):
        inner = Promise()
        flat = unwrap(make_ready_future(inner.get_future()))
        inner.set_exception(ValueError("inner"))
        with pytest.raises(ValueError):
            flat.get()

    def test_unwrap_async_returning_future(self, rt):
        def produce():
            return async_(lambda: "nested result")

        def main():
            return unwrap(async_(produce)).get()

        assert rt.run(main) == "nested result"

    def test_unwrap_never_ready_stays_pending(self):
        flat = unwrap(Promise().get_future())
        with pytest.raises(FutureNotReadyError):
            flat.get_nowait()
