"""Schedule-space explorer: corpus bugs, DPOR pruning, replay, pools.

The seeded-bug corpus lives in ``tests/analysis/corpus``: each app's
bug is invisible to a single (default-schedule) run under the dynamic
sanitizers, and must be found by ``repro.analysis.explore`` within its
default budget.
"""

from __future__ import annotations

import pytest

from corpus import CORPUS
from repro import analysis
from repro.analysis.explore import (
    DEFAULT_BUDGET,
    DEMO_APPS,
    PrefixStrategy,
    _run_schedule,
    _violation_of,
    explore,
    get_app,
    replay_file,
)
from repro.config import Config
from repro.errors import ValidationError
from repro.runtime import instrument, replay
from repro.runtime.runtime import Runtime

BUGGY = [name for name, (_, kind) in CORPUS.items() if kind is not None]
CLEAN = [name for name, (_, kind) in CORPUS.items() if kind is None]


# ---------------------------------------------------------------------------
# Single-schedule sanitizers miss every corpus bug
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BUGGY)
def test_default_schedule_hides_the_bug(name):
    """A plain run with both sanitizers attached reports nothing."""
    app, _ = CORPUS[name]
    outcome = _run_schedule(app, PrefixStrategy([]))
    assert outcome.status == "ok"
    assert outcome.races == []
    assert outcome.pending_demands == []
    assert outcome.invariant_error is None
    assert _violation_of(outcome, outcome) is None


# ---------------------------------------------------------------------------
# The explorer finds every corpus bug within the default budget
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BUGGY)
def test_explore_finds_corpus_bug(name):
    app, kind = CORPUS[name]
    report = explore(app)  # default strategy (dpor) and budget
    assert report.schedules_run <= DEFAULT_BUDGET
    assert report.violation is not None
    assert report.violation.kind == kind
    assert report.violation.choices, "minimized trace should keep a choice"


@pytest.mark.parametrize("name", BUGGY)
def test_preemption_bounding_finds_corpus_bug(name):
    """Every seeded bug is reachable within the default preemption bound."""
    app, kind = CORPUS[name]
    report = explore(app, strategy="pb", minimize=False)
    assert report.violation is not None
    assert report.violation.kind == kind


def test_random_walk_finds_hidden_race():
    app, kind = CORPUS["corpus/race_hidden"]
    report = explore(app, strategy="random", seed=0, minimize=False)
    assert report.violation is not None
    assert report.violation.kind == kind


def test_deadlock_violation_carries_wait_graph_dot():
    app, _ = CORPUS["corpus/andgate_deadlock"]
    report = explore(app, strategy="pb", minimize=False)
    dot = report.violation.graph_dot
    assert dot is not None and dot.startswith("digraph")
    assert "->" in dot  # at least one wait edge, cycle path highlighted


def test_minimization_shrinks_the_trace():
    app, kind = CORPUS["corpus/andgate_deadlock"]
    full = explore(app, minimize=False)
    small = explore(app, minimize=True)
    assert small.violation.kind == kind
    assert len(small.violation.choices) <= len(full.violation.choices)
    # The and-gate inversion needs exactly two non-default choices.
    assert sum(1 for c in small.violation.choices if c) == 2


# ---------------------------------------------------------------------------
# Clean apps and demos stay clean; DPOR prunes the schedule space
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", CLEAN)
def test_clean_corpus_apps_explore_clean(name):
    app, _ = CORPUS[name]
    report = explore(app)
    assert report.violation is None
    assert report.exhausted, "small clean apps should exhaust their space"


@pytest.mark.parametrize("name", DEMO_APPS)
def test_demo_apps_explore_clean(name):
    report = explore(get_app(name), budget=10, minimize=False)
    assert report.violation is None
    assert report.schedules_run <= 10


def test_dpor_explores_fewer_schedules_than_exhaustive():
    """Persistent-set reduction: same verdict, measurably fewer runs."""
    app, _ = CORPUS["corpus/independent"]
    dpor = explore(app, strategy="dpor", budget=60, minimize=False)
    exhaustive = explore(app, strategy="exhaustive", budget=60, minimize=False)
    assert dpor.violation is None and exhaustive.violation is None
    assert dpor.exhausted and exhaustive.exhausted
    assert dpor.schedules_run < exhaustive.schedules_run


def test_unknown_app_name_is_a_validation_error():
    with pytest.raises(ValidationError):
        get_app("corpus/no-such-app")


# ---------------------------------------------------------------------------
# Replay files re-execute deterministically
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["corpus/race_hidden", "corpus/conservation"])
def test_replay_file_roundtrip_bit_identical(name, tmp_path):
    app, kind = CORPUS[name]
    path = tmp_path / "violation.json"
    report = explore(app, replay_path=str(path))
    assert report.replay_path == str(path)
    outcome = replay_file(str(path))
    assert outcome.recorded_kind == kind
    assert outcome.reproduced
    assert outcome.bit_identical
    assert "bit-identically" in outcome.summary()


def test_replay_file_roundtrip_deadlock(tmp_path):
    app, kind = CORPUS["corpus/andgate_deadlock"]
    path = tmp_path / "violation.json"
    explore(app, replay_path=str(path))
    outcome = replay_file(str(path))
    assert outcome.recorded_kind == kind
    assert outcome.reproduced


def test_replay_file_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-a-replay.json"
    path.write_text('{"kind": "something-else"}')
    with pytest.raises(ValidationError):
        replay_file(str(path))


def test_exploration_is_deterministic():
    """Two identical explorations agree choice-for-choice -- nothing
    (pooled shells, batching, global counters) leaks between runs."""
    app, _ = CORPUS["corpus/conservation"]
    first = explore(app, strategy="random", seed=11, minimize=False)
    second = explore(app, strategy="random", seed=11, minimize=False)
    assert first.schedules_run == second.schedules_run
    assert first.reference_sha256 == second.reference_sha256
    assert first.violation.choices == second.violation.choices
    assert first.violation.kind == second.violation.kind


# ---------------------------------------------------------------------------
# The deterministic-replay guard really disables the object pools
# ---------------------------------------------------------------------------


def _churn(pool, n=6):
    def work():
        return None

    for _ in range(n):
        pool.submit(work).get()
    return None


def test_replay_guard_disables_shell_and_frame_pools():
    cfg = Config().replace(runtime__deterministic_replay=True)
    with Runtime(n_localities=1, workers_per_locality=1, config=cfg) as rt:
        assert replay.deterministic
        pool = rt.localities[0].pool
        rt.run(lambda: _churn(pool))
        assert pool._shell_pool == []
        assert pool._frame_pool == []
        assert rt._parcel_pool is None
        assert rt._batcher is None
    assert not replay.deterministic  # bracket closed with the runtime


def test_pools_recycle_without_the_guard():
    """Control case: the same workload does reuse shells normally."""
    with Runtime(n_localities=1, workers_per_locality=1) as rt:
        assert not replay.deterministic
        assert not instrument.enabled
        pool = rt.localities[0].pool
        rt.run(lambda: _churn(pool))
        assert len(pool._shell_pool) > 0
        assert len(pool._frame_pool) > 0


def test_explorer_forces_the_guard_even_without_config():
    app, _ = CORPUS["corpus/race_fixed"]
    seen = []

    def build(rt):
        inner = app.build(rt)

        def job():
            seen.append(replay.deterministic)
            return inner()

        return job

    probe_app = type(app)(name="corpus/_guard_probe", build=build,
                          n_localities=1, workers_per_locality=1)
    explore(probe_app, budget=2, minimize=False)
    assert seen and all(seen)


# ---------------------------------------------------------------------------
# Wait-graph DOT export (satellite)
# ---------------------------------------------------------------------------


def test_wait_graph_dot_without_detector_is_empty_digraph():
    dot = analysis.wait_graph_dot()
    assert dot.startswith("digraph")
    assert "->" not in dot
