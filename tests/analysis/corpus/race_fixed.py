"""The repaired :mod:`.race_hidden`: the guard is a real LCO edge.

Worker B waits on a channel that worker A fulfils *after* its write, so
B's decision to skip is ordered after A's write on every schedule --
there is no interleaving with two unordered writes.  The explorer finds
no violation; the app exists so tests can compare search-space sizes on
a clean program (DPOR must prove the same result while enumerating
strictly fewer schedules than exhaustive search).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.explore import ExploreApp
from repro.runtime.lco import Channel
from repro.runtime.runtime import Runtime
from .race_hidden import ResultCell


def _build(rt: Runtime) -> Callable[[], Any]:
    cell = ResultCell()
    audit = Channel("audit")
    primed = Channel("primed")

    def write_primary() -> None:
        audit.set("primary")
        cell.mark_write("value")
        cell.value = 1.0
        primed.set(True)  # the fix: an LCO edge instead of a plain flag

    def write_fallback() -> None:
        audit.set("fallback")
        if not primed.get_sync():
            cell.mark_write("value")
            cell.value = 2.0

    def job() -> float:
        pool = rt.localities[0].pool
        fa = pool.submit(write_primary, description="writer-primary")
        fb = pool.submit(write_fallback, description="writer-fallback")
        fa.get()
        fb.get()
        audit.close()
        return cell.value

    return job


def make_app() -> ExploreApp:
    return ExploreApp(name="corpus/race_fixed", build=_build,
                      n_localities=1, workers_per_locality=1)
