"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue


def test_empty_queue_is_falsy():
    queue = EventQueue()
    assert not queue
    assert len(queue) == 0


def test_pop_on_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_peek_on_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().peek_time()


def test_events_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append(3))
    queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    while queue:
        queue.pop().fire()
    assert fired == [1, 2, 3]


def test_equal_times_fire_in_insertion_order():
    queue = EventQueue()
    fired = []
    for i in range(10):
        queue.push(1.0, lambda i=i: fired.append(i))
    while queue:
        queue.pop().fire()
    assert fired == list(range(10))


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(-1.0, lambda: None)


def test_peek_time():
    queue = EventQueue()
    queue.push(5.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 2.0


def test_cancel_removes_event():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: "keep")
    drop = queue.push(0.5, lambda: "drop")
    assert queue.cancel(drop)
    assert len(queue) == 1
    assert queue.pop() is keep


def test_cancel_twice_returns_false():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert queue.cancel(event)
    assert not queue.cancel(event)


def test_cancel_popped_event_returns_false():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.pop()
    assert not queue.cancel(event)


def test_clear():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue


def test_fire_returns_action_result():
    queue = EventQueue()
    queue.push(0.0, lambda: 42)
    assert queue.pop().fire() == 42
