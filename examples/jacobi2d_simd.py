#!/usr/bin/env python3
"""The paper's 2D Jacobi study (Listing 2 / Figs 4-8), at laptop scale.

Demonstrates the generic-kernel design: the *same* solver runs with a
scalar (auto-vectorizable) container layout and with explicit SIMD packs
in the Virtual Node Scheme layout, for three ISAs including frozen-width
SVE.  Verifies that all variants agree bit-for-bit, measures real host
rates, and then projects the paper's full-scale runs with the calibrated
models (the Fig 4/6 curves).

Run:  python examples/jacobi2d_simd.py
"""

import time

import numpy as np

from repro.hardware import machine
from repro.perf import stencil2d_glups, stencil2d_time
from repro.reporting import format_table
from repro.simd import AVX2, NEON, sve
from repro.stencil import Jacobi2D, max_error

NY, NX, STEPS = 128, 1026, 20


def host_rates() -> list[list[str]]:
    """Run every kernel variant for real; verify and time them."""
    reference = None
    rows = []
    variants = [
        ("auto (scalar layout)", "auto", None),
        ("simd / NEON (4 x f32)", "simd", NEON),
        ("simd / AVX2 (8 x f32)", "simd", AVX2),
        ("simd / SVE-512 (16 x f32)", "simd", sve(512)),
    ]
    for label, mode, isa in variants:
        solver = Jacobi2D(NY, NX, np.float32, mode=mode, isa=isa)
        solver.initialize()
        start = time.perf_counter()
        solver.run(STEPS)
        elapsed = time.perf_counter() - start
        result = solver.solution()
        if reference is None:
            reference = result
            error = 0.0
        else:
            error = max_error(result, reference)
        assert error == 0.0, f"{label} diverged from the scalar kernel"
        glups = solver.lattice_site_updates / elapsed / 1e9
        rows.append([label, f"{glups:.3f}", f"{error:.0e}"])
    return rows


def paper_projection() -> list[list[str]]:
    """Project the paper's full-scale runs (8192x131072, 100 steps)."""
    rows = []
    for name in ("xeon-e5-2660v3", "kunpeng916", "thunderx2", "a64fx"):
        m = machine(name)
        n = m.spec.cores_per_node
        rows.append(
            [
                m.spec.name,
                f"{stencil2d_glups(m, np.float32, 'auto', n):.1f}",
                f"{stencil2d_glups(m, np.float32, 'simd', n):.1f}",
                f"{stencil2d_glups(m, np.float64, 'simd', n):.1f}",
                f"{stencil2d_time(m, np.float32, 'simd', n):.2f}s",
                f"{stencil2d_time(m, np.float64, 'simd', n):.2f}s",
            ]
        )
    return rows


def main() -> None:
    print(f"Host kernel rates (grid {NY}x{NX}, {STEPS} steps, float32):")
    print(format_table(["variant", "GLUP/s (host)", "max err vs auto"], host_rates()))
    print("\nEvery explicitly vectorized variant reproduces the scalar "
          "kernel exactly -- the VNS halo shuffle is correct.\n")

    print("Paper-scale projection (full node, 8192x131072, 100 steps):")
    print(
        format_table(
            [
                "machine",
                "float auto",
                "float simd",
                "double simd (GLUP/s)",
                "t(float)",
                "t(double)",
            ],
            paper_projection(),
        )
    )
    print(
        "\nCompare the A64FX row with Sec. VII-B: floats under 2 s, "
        "doubles about 3.5 s on 48 compute cores."
    )


if __name__ == "__main__":
    main()
