"""Multi-tenant durable job service (the "millions of users" front door).

``repro.service`` turns the one-shot library workloads (distributed
stencils, micro-benchmarks) into *jobs*: durable, idempotently
submitted, leased to workers, retried from their last checkpoint after
a crash, and scheduled fairly across tenants.  The guarantee is
exactly-once terminal states: every accepted job reaches ``done``,
``failed``, or ``cancelled`` exactly once, even through SIGKILL of the
service process at any point.

Layers (see ``docs/job-service.md``):

* :mod:`~repro.service.journal` -- append-only fsync'd checksummed job
  journal, torn-tail tolerant on replay.
* :mod:`~repro.service.jobs` -- the :class:`Job` state machine and the
  :class:`JobStore` (dedupe-on-insert idempotent submission).
* :mod:`~repro.service.leases` -- time-bounded claims with a bounded
  retry budget and capped exponential backoff.
* :mod:`~repro.service.scheduler` -- per-tenant quotas and weighted
  fair scheduling over the runtime's
  :class:`~repro.runtime.threads.scheduler.WeightedFairQueues`.
* :mod:`~repro.service.admission` -- quota/backlog/breaker admission
  control; rejections always carry ``retry_after``.
* :mod:`~repro.service.executor` -- runs one job attempt inside a
  :class:`~repro.runtime.runtime.Runtime`, checkpointing every epoch so
  a re-claimed job re-drives from its last intact checkpoint.
* :mod:`~repro.service.service` -- :class:`JobService`, tying the
  layers together, with per-tenant ``/jobs{tenant}`` perfcounters and
  trace events.
* :mod:`~repro.service.gateway` -- asyncio HTTP front end.
* :mod:`~repro.service.chaos` -- the kill -9 chaos harness CI runs
  nightly.
"""

from .admission import AdmissionControl, TenantQuota
from .clock import ManualClock, wall_clock
from .executor import JobRunner, job_digest
from .gateway import JobGateway
from .jobs import Job, JobState, JobStore, TERMINAL_STATES
from .journal import Journal, read_journal
from .leases import Lease, LeaseManager, RetryBudget
from .scheduler import FairJobScheduler
from .service import JobService, ServicePolicy

__all__ = [
    "AdmissionControl",
    "FairJobScheduler",
    "Job",
    "JobGateway",
    "JobRunner",
    "JobService",
    "JobState",
    "JobStore",
    "Journal",
    "Lease",
    "LeaseManager",
    "ManualClock",
    "RetryBudget",
    "ServicePolicy",
    "TERMINAL_STATES",
    "TenantQuota",
    "job_digest",
    "read_journal",
    "wall_clock",
]
