"""HPX-thread subsystem: lightweight tasks, schedulers, pools, executors."""

from .hpx_thread import HpxThread, ThreadState
from .scheduler import (
    Scheduler,
    FifoScheduler,
    StaticScheduler,
    WorkStealingScheduler,
    make_scheduler,
)
from .pool import ThreadPool
from .executor import Executor, PoolExecutor, BlockExecutor

__all__ = [
    "HpxThread",
    "ThreadState",
    "Scheduler",
    "FifoScheduler",
    "StaticScheduler",
    "WorkStealingScheduler",
    "make_scheduler",
    "ThreadPool",
    "Executor",
    "PoolExecutor",
    "BlockExecutor",
]
