"""Unit tests for ISA descriptors."""

import numpy as np
import pytest

from repro.errors import SimdError
from repro.simd import AVX2, NEON, isa_for, sve
from repro.simd.isa import SCALAR, ScalarIsa


def test_avx2_lanes():
    assert AVX2.lanes(np.float32) == 8
    assert AVX2.lanes(np.float64) == 4


def test_neon_lanes():
    assert NEON.lanes(np.float32) == 4
    assert NEON.lanes(np.float64) == 2


def test_sve_512_lanes():
    isa = sve(512)
    assert isa.lanes(np.float32) == 16
    assert isa.lanes(np.float64) == 8


def test_sve_width_must_be_multiple_of_128():
    with pytest.raises(SimdError):
        sve(384 + 64)
    with pytest.raises(SimdError):
        sve(4096)
    # all legal SVE widths construct fine
    for bits in range(128, 2049, 128):
        if bits in (128, 256, 512, 1024, 2048):
            assert sve(bits).register_bits == bits


def test_sve_frozen_width_is_not_portable():
    assert sve(512).portable is False


def test_scalar_isa_single_lane():
    assert SCALAR.lanes(np.float32) == 1
    assert SCALAR.lanes(np.float64) == 1
    assert SCALAR.is_scalar
    assert not AVX2.is_scalar


def test_unsupported_dtype_rejected():
    with pytest.raises(SimdError):
        AVX2.lanes(np.int32)


def test_isa_for_lookup():
    assert isa_for("avx2") is AVX2
    assert isa_for("neon") is NEON
    assert isa_for("sve", 256).register_bits == 256
    assert isinstance(isa_for("scalar"), ScalarIsa)
    with pytest.raises(SimdError):
        isa_for("mmx")


def test_isa_for_custom_pipelines():
    dual_neon = isa_for("neon", pipelines=2)
    assert dual_neon.pipelines == 2
    assert dual_neon.lanes(np.float64) == 2


def test_invalid_register_width():
    from repro.simd.isa import FixedIsa

    with pytest.raises(SimdError):
        FixedIsa("odd", 100)
    with pytest.raises(SimdError):
        FixedIsa("neg", 128, pipelines=0)
