"""Counting semaphore LCO (HPX ``counting_semaphore``), future-based."""

from __future__ import annotations

from collections import deque
from typing import Any

from ...errors import RuntimeStateError
from .. import instrument
from ..futures import Future, Promise

__all__ = ["CountingSemaphore"]


class CountingSemaphore:
    """A counting semaphore whose ``acquire`` returns a future.

    Used by throttling patterns (bounding in-flight tasks).  FIFO
    fairness: releases wake acquirers in arrival order.
    """

    def __init__(self, initial: int = 0, max_count: int | None = None) -> None:
        if initial < 0:
            raise RuntimeStateError(f"initial count must be >= 0, got {initial}")
        if max_count is not None and max_count < initial:
            raise RuntimeStateError("max_count must be >= initial count")
        self._count = initial
        self._max = max_count
        self._waiters: deque[Promise] = deque()

    @property
    def count(self) -> int:
        """Currently available permits."""
        return self._count

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Future:
        """A future that becomes ready when a permit is granted."""
        promise = Promise()
        if self._count > 0:
            self._count -= 1
            probe = instrument.probe
            if probe is not None:
                # A banked permit carries the clock of the release that
                # deposited it (if any -- initial permits carry none).
                probe.token_get(self)
            promise.set_value(None)
        else:
            probe = instrument.probe
            if probe is not None:
                probe.lco_labelled(
                    promise._state,
                    f"semaphore.acquire({len(self._waiters) + 1} waiting)",
                )
            self._waiters.append(promise)
        return promise.get_future()

    def acquire_sync(self) -> None:
        """Cooperatively blocking acquire."""
        self.acquire().get()

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._count > 0:
            self._count -= 1
            probe = instrument.probe
            if probe is not None:
                probe.token_get(self)
            return True
        return False

    def release(self, n: int = 1) -> None:
        """Return ``n`` permits, waking waiters FIFO."""
        if n < 1:
            raise RuntimeStateError(f"release needs n >= 1, got {n}")
        for _ in range(n):
            if self._waiters:
                # Direct grant: fulfilment in the releaser's context is
                # the happens-before edge.
                self._waiters.popleft().set_value(None)
            else:
                if self._max is not None and self._count >= self._max:
                    raise RuntimeStateError(
                        f"semaphore over-released beyond max_count={self._max}"
                    )
                probe = instrument.probe
                if probe is not None:
                    probe.token_put(self)
                self._count += 1

    # Checkpoint protocol ----------------------------------------------------
    def checkpoint_state(self) -> dict[str, Any]:
        """Snapshot the available permits and the cap."""
        return {"count": self._count, "max_count": self._max}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Rebuild from a :meth:`checkpoint_state` snapshot, in place."""
        if self._waiters:
            raise RuntimeStateError(
                f"cannot restore into a semaphore with {len(self._waiters)} "
                "pending acquire(s)"
            )
        self._count = int(state["count"])
        raw_max = state["max_count"]
        self._max = None if raw_max is None else int(raw_max)
