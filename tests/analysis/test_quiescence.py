"""Regression tests for the silent-hang quiescence check (no detector).

Before this check existed, a job whose continuation chain was lost
(e.g. a future cycle) would quiesce *successfully*: ``rt.stop()``
returned, the demanded futures simply never fired, and the bug surfaced
as wrong answers far downstream.  The runtime itself must now flag that
-- warn by default, raise under ``runtime.quiescence="raise"`` -- even
when no sanitizer is attached.
"""

import warnings

import pytest

from repro.config import Config
from repro.errors import DeadlockError, QuiescenceWarning
from repro.runtime.futures import Promise
from repro.runtime.lco.dataflow import dataflow
from repro.runtime.runtime import Runtime


def _wire_future_cycle():
    """Two dataflows forming a dependency cycle through a promise:
    f1 needs p1, f2 needs f1, and only f2's continuation would set p1."""
    p1 = Promise()
    f1 = dataflow(lambda x: x, p1.get_future())
    f2 = dataflow(lambda x: x, f1)
    f2.then(lambda f: p1.set_value(f.get()))


def test_two_future_cycle_raises_under_quiescence_raise():
    config = Config(runtime__quiescence="raise")
    with pytest.raises(DeadlockError, match="never become ready"):
        with Runtime(
            n_localities=1, workers_per_locality=2, config=config
        ) as rt:
            rt.run(_wire_future_cycle)


def test_two_future_cycle_warns_by_default():
    with pytest.warns(QuiescenceWarning, match="dataflow"):
        with Runtime(n_localities=1, workers_per_locality=2) as rt:
            rt.run(_wire_future_cycle)


def test_quiescence_ignore_mode_is_silent():
    config = Config(runtime__quiescence="ignore")
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning would fail the test
        with Runtime(
            n_localities=1, workers_per_locality=2, config=config
        ) as rt:
            rt.run(_wire_future_cycle)


def test_clean_job_quiesces_without_warning():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with Runtime(n_localities=1, workers_per_locality=2) as rt:
            def main():
                p = Promise()
                f = dataflow(lambda x: x + 1, p.get_future())
                p.set_value(41)
                return f.get()

            assert rt.run(main) == 42


def test_abandoned_channel_read_is_flagged():
    from repro.runtime.lco import Channel

    config = Config(runtime__quiescence="raise")
    holder = {}
    with pytest.raises(DeadlockError, match="channel.get"):
        with Runtime(
            n_localities=1, workers_per_locality=2, config=config
        ) as rt:
            def main():
                chan = Channel("halo")
                # Held but never fulfilled: a reachable lost read.  (A
                # get whose future is dropped entirely is garbage, not a
                # hang -- the demand registry is weak on purpose.)
                holder["pending"] = chan.get()
                holder["chan"] = chan

            rt.run(main)


def test_invalid_quiescence_mode_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        Config(runtime__quiescence="explode")
