"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one paper exhibit.  Besides timing the
regeneration with pytest-benchmark, each harness writes the rendered
exhibit to ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can reference
concrete artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def exhibit_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_exhibit(exhibit_dir):
    """Write an exhibit's rendered text to the artifact directory."""

    def save(name: str, text: str) -> None:
        (exhibit_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return save


@pytest.fixture
def save_metrics(exhibit_dir):
    """Write a run's metrics artifact (counters + histogram summaries)
    next to the exhibit text -- ``benchmarks/out/<name>.metrics.json``."""

    def save(name: str, *, counters=None, histograms=None, meta=None) -> None:
        from repro.reporting import write_metrics_json

        write_metrics_json(
            exhibit_dir / f"{name}.metrics.json",
            counters=counters,
            histograms=histograms,
            meta=meta,
        )

    return save
