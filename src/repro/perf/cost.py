"""The calibrated execution-time model behind Figs 3-8.

Every prediction combines first-principles structure with the
constants of :mod:`repro.hardware.registry`:

**2D stencil (Figs 4-8)** -- per-core rates cap the instruction-bound
regime; the lockstep NUMA bandwidth model caps the memory-bound regime::

    GLUPS(k) = min(k * rate_core(dtype, mode),
                   eff * BW_lockstep(k) * AI_eff(dtype, k))

``AI_eff`` switches from 3 to 2 memory transfers per update when the
machine's large-cache-line prefetch gives implicit blocking (A64FX
always; ThunderX2 floats always, doubles from 16 cores -- the paper's
"interesting switch").

**1D stencil (Fig 3)** -- the distributed application is memory-bound
with 3 x 8 bytes of traffic per update (read + write-allocate +
write-back of doubles)::

    rate_node = eff_1d * BW_first_touch(all cores) / 24 B

    t_step = compute + overhead + comm        (no overlap: Kunpeng)
    t_step = max(compute, comm) + overhead    (overlap: everyone else)

with ``comm`` from the interconnect model (halo parcels are tiny; what
matters is per-message latency and Kunpeng's congestion term).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..hardware.registry import MachineModel
from .roofline import attainable_performance, stencil2d_arithmetic_intensity

__all__ = [
    "stencil2d_glups",
    "stencil2d_time",
    "expected_peak_2d",
    "stencil1d_node_glups",
    "stencil1d_time",
    "scaling_factor",
    "PAPER_GRID_2D",
    "PAPER_GRID_2D_LARGE",
    "PAPER_STEPS",
    "STRONG_SCALING_POINTS",
    "WEAK_SCALING_POINTS_PER_NODE",
    "TRAFFIC_1D_BYTES_PER_UPDATE",
]

#: Fig 4-6, 8 grid; Fig 7's enlarged grid; all iterate 100 steps.
PAPER_GRID_2D = (8192, 131072)
PAPER_GRID_2D_LARGE = (8192, 196608)
PAPER_STEPS = 100

#: Fig 3 workloads.
STRONG_SCALING_POINTS = 1_200_000_000
WEAK_SCALING_POINTS_PER_NODE = 480_000_000

#: 1D traffic: stream-read the old field, write-allocate + write-back the
#: new one -- 3 double-width transfers per update.
TRAFFIC_1D_BYTES_PER_UPDATE = 3 * 8


def _dtype_name(dtype) -> str:
    name = np.dtype(dtype).name
    if name not in ("float32", "float64"):
        raise ValidationError(f"unsupported dtype {name}")
    return name


def _blocking_active(machine: MachineModel, dtype, n_cores: int) -> bool:
    """Does implicit (large-cache-line) blocking apply here?"""
    cal = machine.calibration
    if _dtype_name(dtype) == "float32":
        return cal.blocking_floats
    if not cal.blocking_doubles:
        return False
    return n_cores >= cal.blocking_doubles_from_cores


def transfers_per_update(machine: MachineModel, dtype, n_cores: int) -> float:
    """Memory transfers per LUP (3 baseline, 2 when blocking applies)."""
    return 2.0 if _blocking_active(machine, dtype, n_cores) else 3.0


def stencil2d_glups(
    machine: MachineModel,
    dtype,
    mode: str,
    n_cores: int,
    pinning: str = "compact",
) -> float:
    """Modelled 2D-stencil performance in GLUP/s (one Fig 4-8 point)."""
    if mode not in ("auto", "simd"):
        raise ValidationError(f"mode must be auto/simd, got {mode!r}")
    if n_cores < 1 or n_cores > machine.spec.cores_per_node:
        raise ValidationError(
            f"{machine.name} has 1..{machine.spec.cores_per_node} cores, "
            f"got {n_cores}"
        )
    name = _dtype_name(dtype)
    rate = machine.calibration.single_core_glups[(name, mode)]
    core_bound = n_cores * rate
    ai = stencil2d_arithmetic_intensity(dtype, transfers_per_update(machine, dtype, n_cores))
    bandwidth = (
        machine.memory.lockstep_bandwidth(n_cores, pinning)
        * machine.calibration.stencil2d_efficiency
    )
    return attainable_performance(core_bound, ai, bandwidth)


def stencil2d_time(
    machine: MachineModel,
    dtype,
    mode: str,
    n_cores: int,
    grid: tuple[int, int] = PAPER_GRID_2D,
    steps: int = PAPER_STEPS,
) -> float:
    """Modelled wall time for the full 2D run (seconds)."""
    ny, nx = grid
    lups = (ny - 2) * (nx - 2) * steps
    return lups / (stencil2d_glups(machine, dtype, mode, n_cores) * 1e9)


def expected_peak_2d(
    machine: MachineModel, dtype, n_cores: int, transfers: float
) -> float:
    """The Fig 6/7/8 "Expected Peak" roofline lines in GLUP/s.

    ``transfers=3`` gives Expected Peak Min, ``transfers=2`` Expected
    Peak Max.  These are pure roofline values -- no efficiency factor,
    no core-rate cap -- exactly as the paper draws them.
    """
    ai = stencil2d_arithmetic_intensity(dtype, transfers)
    bandwidth = machine.memory.lockstep_bandwidth(n_cores, "compact")
    return ai * bandwidth


def stencil1d_node_glups(machine: MachineModel, points_per_node: int | None = None) -> float:
    """Per-node 1D application throughput in GLUP/s (doubles).

    ``points_per_node`` is accepted for future grain-size refinements;
    the calibrated efficiency already folds in the paper's observed AMT
    overhead at the Fig 3 working set, which is per-node-size
    insensitive in the measured range (the paper's Fig 7 argument).
    """
    n_cores = machine.spec.cores_per_node
    bandwidth = machine.memory.first_touch_bandwidth(n_cores, "compact")
    return (
        bandwidth
        * machine.calibration.stencil1d_efficiency
        / TRAFFIC_1D_BYTES_PER_UPDATE
    )


def stencil1d_time(
    machine: MachineModel,
    n_nodes: int,
    steps: int = PAPER_STEPS,
    total_points: int | None = None,
    points_per_node: int | None = None,
) -> float:
    """Modelled wall time of the distributed 1D run (Fig 3, seconds).

    Pass ``total_points`` for strong scaling (default 1.2e9) or
    ``points_per_node`` for weak scaling (480e6/node).
    """
    if n_nodes < 1:
        raise ValidationError("need at least one node")
    if (total_points is None) == (points_per_node is None):
        if total_points is None:
            total_points = STRONG_SCALING_POINTS
        else:
            raise ValidationError(
                "pass exactly one of total_points / points_per_node"
            )
    local_points = (
        points_per_node if points_per_node is not None else total_points // n_nodes
    )
    rate = stencil1d_node_glups(machine, local_points) * 1e9
    compute = local_points / rate
    overhead = machine.calibration.per_step_overhead_s
    if n_nodes == 1:
        comm = 0.0
    else:
        # Two halo parcels per node per step; full duplex, so one
        # transfer time covers the exchange.  Halo payload: one double.
        comm = machine.interconnect.halo_exchange_time(8 + 64, n_nodes)
    if machine.calibration.network_overlap:
        step = max(compute, comm) + overhead
    else:
        step = compute + comm + overhead
    return steps * step


def scaling_factor(machine: MachineModel, n_nodes: int) -> float:
    """Strong-scaling speedup ``T(1)/T(n)`` (the paper quotes 7.36 for
    Xeon and 7.2 for A64FX at 8 nodes)."""
    return stencil1d_time(machine, 1) / stencil1d_time(machine, n_nodes)
