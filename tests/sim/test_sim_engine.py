"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimulationEngine


def test_schedule_and_run():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append("a"))
    engine.schedule_at(0.5, lambda: fired.append("b"))
    final = engine.run()
    assert fired == ["b", "a"]
    assert final == 1.0
    assert engine.events_fired == 2


def test_schedule_after():
    engine = SimulationEngine()
    times = []
    engine.schedule_after(2.0, lambda: times.append(engine.now))
    engine.run()
    assert times == [2.0]


def test_callbacks_can_schedule_more_events():
    engine = SimulationEngine()
    log = []

    def first():
        log.append(("first", engine.now))
        engine.schedule_after(1.0, lambda: log.append(("second", engine.now)))

    engine.schedule_at(1.0, first)
    engine.run()
    assert log == [("first", 1.0), ("second", 2.0)]


def test_schedule_into_past_rejected():
    engine = SimulationEngine()
    engine.schedule_at(1.0, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        SimulationEngine().schedule_after(-1.0, lambda: None)


def test_run_until_stops_at_deadline():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append(1))
    engine.schedule_at(5.0, lambda: fired.append(5))
    engine.run_until(3.0)
    assert fired == [1]
    assert engine.now == 3.0
    engine.run()
    assert fired == [1, 5]


def test_run_until_past_deadline_rejected():
    engine = SimulationEngine()
    engine.clock.advance_to(4.0)
    with pytest.raises(SimulationError):
        engine.run_until(2.0)


def test_max_events_guard():
    engine = SimulationEngine()

    def reschedule():
        engine.schedule_after(1.0, reschedule)

    engine.schedule_at(0.0, reschedule)
    engine.run(max_events=10)
    assert engine.events_fired == 10


def test_cancel_through_engine():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule_at(1.0, lambda: fired.append(1))
    assert engine.cancel(event)
    engine.run()
    assert fired == []


def test_step_returns_false_when_empty():
    assert SimulationEngine().step() is False


def test_reset():
    engine = SimulationEngine()
    engine.schedule_at(1.0, lambda: None)
    engine.run()
    engine.reset()
    assert engine.now == 0.0
    assert engine.events_fired == 0
