"""Runtime configuration, modelled after HPX's ``--hpx:ini`` key/value store.

A :class:`Config` is an immutable-ish mapping of dotted keys
(``"threads.scheduler"``, ``"parcel.latency_us"``) with typed accessors and
validation.  The defaults reproduce the configuration used in the paper:
one worker per physical core, first-touch NUMA placement, work-stealing
scheduling, and network-overlap enabled.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from .errors import ConfigError

__all__ = ["Config", "default_config"]

#: Default configuration values. Keys are dotted, grouped by subsystem.
_DEFAULTS: dict[str, Any] = {
    # Thread subsystem (HPX thread-manager analogue).
    "threads.scheduler": "work-stealing",  # work-stealing | static | fifo
    "threads.per_core": 1,  # paper pins one worker per physical core
    "threads.steal_attempts": 4,  # victims probed before idling
    "threads.pin": True,  # hwloc-bind analogue
    # AGAS.
    "agas.refcount": True,
    "agas.migration": True,
    # Parcel subsystem.
    "parcel.serialize": True,  # serialize args even in-process (catches bugs)
    "parcel.zero_copy": True,  # loopback fast path: encode (validate+charge) but skip decode
    "parcel.overlap": True,  # hide network latency under compute
    # Parcel coalescing: pack small same-destination parcels into one wire
    # message.  Off by default; the amortization is a wall-clock/packet-rate
    # win and per-parcel semantics (acks, retries, credits, dedupe, byte
    # accounting) are preserved exactly either way.
    "parcel.batching": False,
    "parcel.batch_max_parcels": 16,  # flush when a batch holds this many parcels
    "parcel.batch_max_bytes": 16384,  # ... or this many payload+header bytes
    "parcel.batch_linger_s": 0.0,  # virtual hold time; 0 = flush at the next yield
    # Reliable delivery (consulted only when a FaultInjector is installed).
    "parcel.retry": True,  # retransmit lost parcels on ack-timeout
    "parcel.retry_max_attempts": 8,  # total transmissions before dead-letter
    "parcel.retry_timeout_s": 0.0,  # base ack-timeout; 0 = derive from network RTO
    "parcel.retry_max_timeout_s": 0.0,  # backoff cap; 0 = 64x the base timeout
    "parcel.retry_backoff": 2.0,  # exponential backoff factor
    "parcel.retry_jitter": 0.0,  # seeded backoff jitter fraction (0 = synchronized)
    # Overload protection (repro.resilience.overload).  Off by default so
    # unprotected runs stay bit-identical with the committed benchmark
    # baselines; the chaos/storm paths switch it on explicitly.  The
    # dead-letter-queue bound applies regardless (0 = unbounded).
    "overload.enabled": False,
    "overload.credits": 32,  # per-destination send credits (replenished on ack)
    "overload.max_inflight": 64,  # hard cap on un-acked parcels per destination
    "overload.max_queue_depth": 128,  # dest backlog at which LOW parcels defer/shed
    "overload.defer_base_s": 1e-4,  # base virtual delay before a deferred re-admit
    "overload.defer_max": 3,  # LOW deferrals before the parcel is shed
    "overload.dlq_max": 1024,  # dead-letter queue bound, oldest evicted first
    "overload.breaker_threshold": 3,  # consecutive dead-letters that open the breaker
    "overload.breaker_reset_s": 1e-3,  # open -> half-open probe delay (virtual s)
    "overload.phi_window": 32,  # inter-arrival samples kept per peer
    "overload.phi_throttle": 3.0,  # suspicion at which credit ceilings halve
    "overload.phi_suspect": 8.0,  # suspicion at which the breaker opens
    "overload.phi_confirm": 16.0,  # suspicion at which the peer is confirmed dead
    # Parallel algorithms.
    "algorithms.chunker": "auto",  # auto | static
    "algorithms.min_chunk": 1,
    # NUMA placement.
    "numa.first_touch": True,  # block allocator, OpenMP schedule(static)-like
    # Checkpoint/restart (consulted by the resilient stencil drivers and
    # repro.resilience.checkpoint.CheckpointStore).
    "checkpoint.interval": 0,  # epoch length in app steps; 0 = crash-triggered only
    "checkpoint.keep": 2,  # retained epochs (>= 2 enables corruption fallback)
    "checkpoint.cost_base_s": 1e-6,  # fixed virtual cost per save/restore
    "checkpoint.cost_per_byte_s": 1e-9,  # virtual seconds per serialized byte
    # Execution backend: where the localities live.  "virtual" is the
    # deterministic single-process simulation on the virtual clock (the
    # CI/sanitizer/explorer mode); "multiprocess" runs one OS process per
    # locality with parcels carried over pipes, doing real concurrent
    # work on real cores (see repro.runtime.backend).
    "runtime.backend": "virtual",  # virtual | multiprocess
    "runtime.processes": 0,  # multiprocess: OS process count; 0 = one per locality
    "runtime.mp_start_method": "auto",  # auto | fork | spawn
    "runtime.mp_stall_timeout_s": 60.0,  # blocked-on-transport stall diagnosis
    "runtime.mp_sync_rounds": 64,  # shutdown termination-detection round cap
    # Quiescence policy: what to do when the job drains with demanded
    # futures (dataflow/when_* targets, channel reads) left unfulfilled.
    "runtime.quiescence": "warn",  # warn | raise | ignore
    # Deterministic replay (schedule exploration): disables every object
    # pool (thread shells, parcel shells, execution frames) and the
    # parcel batcher so object identity and send grouping cannot leak
    # state between explored schedules.  repro.analysis.explore forces
    # this on for every run it controls.
    "runtime.deterministic_replay": False,
    # Determinism.
    "seed": 0,
}

_VALID_SCHEDULERS = ("work-stealing", "static", "fifo")
_VALID_CHUNKERS = ("auto", "static")
_VALID_QUIESCENCE = ("warn", "raise", "ignore")
_VALID_BACKENDS = ("virtual", "multiprocess")
_VALID_START_METHODS = ("auto", "fork", "spawn")


class Config(Mapping[str, Any]):
    """Typed, validated key/value configuration store.

    Unknown keys are rejected eagerly so a typo in a benchmark script fails
    at construction rather than silently using a default.
    """

    __slots__ = ("_values",)

    def __init__(self, **overrides: Any) -> None:
        values = dict(_DEFAULTS)
        for key, value in overrides.items():
            dotted = key.replace("__", ".")
            if dotted not in values:
                raise ConfigError(f"unknown configuration key: {dotted!r}")
            values[dotted] = value
        self._values = values
        self._validate()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Config":
        """Build a config from a mapping with dotted keys."""
        cfg = cls()
        for key, value in mapping.items():
            if key not in cfg._values:
                raise ConfigError(f"unknown configuration key: {key!r}")
            cfg._values[key] = value
        cfg._validate()
        return cfg

    def _validate(self) -> None:
        sched = self._values["threads.scheduler"]
        if sched not in _VALID_SCHEDULERS:
            raise ConfigError(
                f"threads.scheduler must be one of {_VALID_SCHEDULERS}, got {sched!r}"
            )
        chunker = self._values["algorithms.chunker"]
        if chunker not in _VALID_CHUNKERS:
            raise ConfigError(
                f"algorithms.chunker must be one of {_VALID_CHUNKERS}, got {chunker!r}"
            )
        quiescence = self._values["runtime.quiescence"]
        if quiescence not in _VALID_QUIESCENCE:
            raise ConfigError(
                f"runtime.quiescence must be one of {_VALID_QUIESCENCE}, "
                f"got {quiescence!r}"
            )
        backend = self._values["runtime.backend"]
        if backend not in _VALID_BACKENDS:
            raise ConfigError(
                f"runtime.backend must be one of {_VALID_BACKENDS}, got {backend!r}"
            )
        start_method = self._values["runtime.mp_start_method"]
        if start_method not in _VALID_START_METHODS:
            raise ConfigError(
                f"runtime.mp_start_method must be one of {_VALID_START_METHODS}, "
                f"got {start_method!r}"
            )
        if int(self._values["runtime.processes"]) < 0:
            raise ConfigError("runtime.processes must be >= 0 (0 = one per locality)")
        if float(self._values["runtime.mp_stall_timeout_s"]) <= 0:
            raise ConfigError("runtime.mp_stall_timeout_s must be positive")
        if int(self._values["runtime.mp_sync_rounds"]) < 1:
            raise ConfigError("runtime.mp_sync_rounds must be >= 1")
        if int(self._values["threads.per_core"]) < 1:
            raise ConfigError("threads.per_core must be >= 1")
        if int(self._values["threads.steal_attempts"]) < 0:
            raise ConfigError("threads.steal_attempts must be >= 0")
        if int(self._values["algorithms.min_chunk"]) < 1:
            raise ConfigError("algorithms.min_chunk must be >= 1")
        if int(self._values["parcel.retry_max_attempts"]) < 1:
            raise ConfigError("parcel.retry_max_attempts must be >= 1")
        if float(self._values["parcel.retry_timeout_s"]) < 0:
            raise ConfigError("parcel.retry_timeout_s must be non-negative")
        if float(self._values["parcel.retry_max_timeout_s"]) < 0:
            raise ConfigError("parcel.retry_max_timeout_s must be non-negative")
        if float(self._values["parcel.retry_backoff"]) < 1.0:
            raise ConfigError("parcel.retry_backoff must be >= 1.0")
        if not 0.0 <= float(self._values["parcel.retry_jitter"]) <= 1.0:
            raise ConfigError("parcel.retry_jitter must be in [0, 1]")
        if int(self._values["parcel.batch_max_parcels"]) < 1:
            raise ConfigError("parcel.batch_max_parcels must be >= 1")
        if int(self._values["parcel.batch_max_bytes"]) < 1:
            raise ConfigError("parcel.batch_max_bytes must be >= 1")
        if float(self._values["parcel.batch_linger_s"]) < 0:
            raise ConfigError("parcel.batch_linger_s must be non-negative")
        if int(self._values["overload.credits"]) < 1:
            raise ConfigError("overload.credits must be >= 1")
        if int(self._values["overload.max_inflight"]) < 1:
            raise ConfigError("overload.max_inflight must be >= 1")
        if int(self._values["overload.max_queue_depth"]) < 1:
            raise ConfigError("overload.max_queue_depth must be >= 1")
        if float(self._values["overload.defer_base_s"]) <= 0:
            raise ConfigError("overload.defer_base_s must be positive")
        if int(self._values["overload.defer_max"]) < 0:
            raise ConfigError("overload.defer_max must be >= 0")
        if int(self._values["overload.dlq_max"]) < 0:
            raise ConfigError("overload.dlq_max must be >= 0 (0 = unbounded)")
        if int(self._values["overload.breaker_threshold"]) < 1:
            raise ConfigError("overload.breaker_threshold must be >= 1")
        if float(self._values["overload.breaker_reset_s"]) <= 0:
            raise ConfigError("overload.breaker_reset_s must be positive")
        if int(self._values["overload.phi_window"]) < 2:
            raise ConfigError("overload.phi_window must be >= 2")
        throttle = float(self._values["overload.phi_throttle"])
        suspect = float(self._values["overload.phi_suspect"])
        confirm = float(self._values["overload.phi_confirm"])
        if not 0.0 < throttle <= suspect <= confirm:
            raise ConfigError(
                "phi thresholds must satisfy 0 < throttle <= suspect <= confirm"
            )
        if int(self._values["checkpoint.interval"]) < 0:
            raise ConfigError("checkpoint.interval must be >= 0 (0 disables)")
        if int(self._values["checkpoint.keep"]) < 1:
            raise ConfigError("checkpoint.keep must be >= 1")
        if float(self._values["checkpoint.cost_base_s"]) < 0:
            raise ConfigError("checkpoint.cost_base_s must be non-negative")
        if float(self._values["checkpoint.cost_per_byte_s"]) < 0:
            raise ConfigError("checkpoint.cost_per_byte_s must be non-negative")

    def replace(self, **overrides: Any) -> "Config":
        """Return a new config with ``overrides`` applied."""
        merged = dict(self._values)
        for key, value in overrides.items():
            dotted = key.replace("__", ".")
            if dotted not in merged:
                raise ConfigError(f"unknown configuration key: {dotted!r}")
            merged[dotted] = value
        return Config.from_mapping(merged)

    # Mapping protocol -----------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        try:
            return self._values[key]
        except KeyError:
            raise ConfigError(f"unknown configuration key: {key!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # Typed accessors ------------------------------------------------------
    def get_bool(self, key: str) -> bool:
        return bool(self[key])

    def get_int(self, key: str) -> int:
        return int(self[key])

    def get_float(self, key: str) -> float:
        return float(self[key])

    def get_str(self, key: str) -> str:
        return str(self[key])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        changed = {k: v for k, v in self._values.items() if v != _DEFAULTS[k]}
        return f"Config({changed!r})"


def default_config() -> Config:
    """The configuration used by the paper's benchmark runs."""
    return Config()
