"""Parcel-path microbenchmark: cross-locality action storms.

The pytest-benchmark twin of ``repro bench``'s ``parcel_storm`` entry:
every invocation pays the full parcel path -- encode, route, handler
spawn, decode, reply -- over the loopback port, with and without the
config-gated ``parcel.zero_copy`` fast path.  Both variants assert the
same virtual makespan fingerprint, so a speed-up that moved the model's
answer would fail here before it ever reached the committed baseline.
"""

from repro.config import Config
from repro.runtime import Runtime, when_all

N = 300
PAYLOAD = list(range(64))


def _storm_handler(payload, i):
    return len(payload) + i


def _storm(config=None):
    with Runtime(n_localities=2, workers_per_locality=2, config=config) as rt:

        def main():
            futures = [
                rt.async_at(1, _storm_handler, PAYLOAD, i) for i in range(N)
            ]
            return sum(f.get() for f in when_all(futures).get())

        total = rt.run(main)
        return total, rt.makespan, rt.parcelport.parcels_sent


EXPECTED = sum(len(PAYLOAD) + i for i in range(N))


def test_parcel_storm_default_path(benchmark):
    total, makespan, parcels = benchmark(_storm)
    assert total == EXPECTED
    assert parcels >= N  # request parcels at minimum


def test_parcel_storm_zero_copy(benchmark):
    """Gated fast path: same answers, fewer decode cycles."""
    _, makespan_default, parcels_default = _storm()
    config = Config(parcel__zero_copy=True)
    total, makespan, parcels = benchmark(_storm, config)
    assert total == EXPECTED
    assert makespan == makespan_default
    assert parcels == parcels_default
