"""Argument serialization for parcels.

Arguments really are encoded (pickle) and decoded at delivery, even for
same-process localities -- matching HPX, which serializes through its
parcel layer whenever a boundary is crossed.  This catches the classic
distributed-programming bug (shipping something unshippable: an open
file, a lambda closing over local state) in *every* test run, and gives
the network model honest byte counts.
"""

from __future__ import annotations

import pickle
from typing import Any

from ...errors import SerializationError

__all__ = ["serialize", "deserialize", "serialized_size"]

#: Protocol 4 is ample and stable across the Pythons we support.
_PROTOCOL = 4


def serialize(payload: Any) -> bytes:
    """Encode ``payload`` for the wire; raises :class:`SerializationError`
    with the offending object named when encoding is impossible."""
    try:
        return pickle.dumps(payload, protocol=_PROTOCOL)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise SerializationError(
            f"cannot serialize parcel payload ({type(payload).__name__}): {exc}"
        ) from exc


def deserialize(data: bytes) -> Any:
    """Decode wire bytes back into the payload."""
    try:
        return pickle.loads(data)
    except (pickle.UnpicklingError, EOFError, ValueError) as exc:
        raise SerializationError(f"cannot deserialize parcel: {exc}") from exc


def serialized_size(payload: Any) -> int:
    """Wire size in bytes (drives the network transfer-time model).

    Already-encoded payloads are measured directly -- callers that hold
    the wire bytes (every parcelport path does) must not pay a second
    pickle pass just to learn a length.
    """
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return len(serialize(payload))
