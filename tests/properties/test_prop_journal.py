"""Property: a crash mid-append never corrupts the job journal.

A crash while :meth:`Journal.append` is writing leaves the file
truncated at an arbitrary byte offset -- everything before the cut is
intact (each record was fsync'd before the next began), everything
after it is gone.  For *every* cut point the journal must replay to an
exact prefix of the original history: at most the final, partially
written record is dropped (and reported as a torn tail), no earlier
record is lost, and no terminal transition is duplicated or invented.

Damage that is *not* explainable as a torn tail -- a flipped byte in
the middle of the file -- must refuse to replay loudly instead.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.errors import JournalCorruptError
from repro.service import JobState, JobStore, ManualClock, read_journal
from repro.service.jobs import TERMINAL_STATES

# Each trajectory is a valid walk through the job state machine,
# exercising retries (running -> pending -> claimed again) as well as
# every terminal edge.  Index is drawn by hypothesis per job.
_TRAJECTORIES = (
    (),  # stays pending
    (JobState.CLAIMED,),
    (JobState.CLAIMED, JobState.RUNNING),
    (JobState.CLAIMED, JobState.RUNNING, JobState.DONE),
    (JobState.CLAIMED, JobState.RUNNING, JobState.FAILED),
    (JobState.CANCELLED,),
    (
        JobState.CLAIMED,
        JobState.RUNNING,
        JobState.PENDING,  # retry: re-queued after a failed attempt
        JobState.CLAIMED,
        JobState.RUNNING,
        JobState.DONE,
    ),
)


def _build_history(root, trajectories):
    """Drive a fresh store through the drawn trajectories; return its path."""
    path = Path(root) / "jobs.journal"
    store = JobStore(path, clock=ManualClock(), sync=False)
    jobs = []
    for i, _ in enumerate(trajectories):
        job, created = store.submit(
            f"tenant-{i % 2}",
            "stencil1d",
            {"nx": 8, "steps": i},
            dedupe_key=f"key-{i}",
        )
        assert created
        jobs.append(job.job_id)
    # Interleave transitions round-robin so records from different jobs
    # alternate in the journal (a cut mid-file splits several jobs).
    cursors = [list(t) for t in trajectories]
    progressed = True
    while progressed:
        progressed = False
        for job_id, remaining in zip(jobs, cursors):
            if remaining:
                store.transition(job_id, remaining.pop(0))
                progressed = True
    store.close()
    return path


def _fold_states(records):
    """Reference replay: final state per job from raw journal records."""
    states = {}
    for record in records:
        if record["op"] == "submit":
            states[record["job_id"]] = JobState.PENDING
        else:
            states[record["job_id"]] = JobState(record["to"])
    return states


def _terminal_counts(records):
    counts = {}
    for record in records:
        if record["op"] == "transition" and JobState(record["to"]) in TERMINAL_STATES:
            counts[record["job_id"]] = counts.get(record["job_id"], 0) + 1
    return counts


@settings(max_examples=60, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_TRAJECTORIES) - 1),
        min_size=1,
        max_size=5,
    ),
    data=st.data(),
)
def test_any_crash_point_replays_to_an_exact_prefix(picks, data):
    with tempfile.TemporaryDirectory() as root:
        path = _build_history(root, [_TRAJECTORIES[p] for p in picks])
        raw = path.read_bytes()
        full_records, full_torn = read_journal(path)
        assert not full_torn

        cut = data.draw(st.integers(min_value=0, max_value=len(raw)), label="cut")
        torn_path = Path(root) / "torn.journal"
        torn_path.write_bytes(raw[:cut])

        records, torn = read_journal(torn_path)
        # Replay is an exact prefix: nothing lost before the cut, nothing
        # invented after it.
        assert records == full_records[: len(records)]
        # At most ONE record -- the final, partially written one -- is
        # dropped relative to the bytes that survived.
        boundaries = {0}
        offset = 0
        for line in raw.splitlines(keepends=True):
            offset += len(line)
            boundaries.add(offset)
        assert torn == (cut not in boundaries)
        assert len(full_records) - len(records) == _records_cut(raw, cut)

        # The store itself accepts the torn journal and agrees with a
        # plain fold of the surviving records.
        store = JobStore(torn_path, clock=ManualClock(), sync=False)
        assert store.torn_tail_dropped == torn
        folded = _fold_states(records)
        assert {job.job_id: job.state for job in store.jobs()} == folded
        # Terminal transitions are exactly-once in every prefix: a job is
        # terminal in the store iff the prefix holds exactly one terminal
        # record for it, and never more than one.
        counts = _terminal_counts(records)
        assert all(count == 1 for count in counts.values())
        assert set(counts) == {
            job_id for job_id, state in folded.items() if state in TERMINAL_STATES
        }
        store.close()


def _records_cut(raw, cut):
    """How many *complete* records the truncation at ``cut`` removed."""
    return raw[cut:].count(b"\n")


@settings(max_examples=60, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_TRAJECTORIES) - 1),
        min_size=2,
        max_size=4,
    ),
    data=st.data(),
)
def test_mid_file_damage_is_refused_not_replayed(picks, data):
    """A flipped byte anywhere before the final record refuses to replay."""
    with tempfile.TemporaryDirectory() as root:
        path = _build_history(root, [_TRAJECTORIES[p] for p in picks])
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        assert len(lines) >= 2
        final_start = len(raw) - len(lines[-1])

        offset = data.draw(
            st.integers(min_value=0, max_value=final_start - 1), label="offset"
        )
        flip = bytes([raw[offset] ^ 0x01])
        damaged = Path(root) / "damaged.journal"
        damaged.write_bytes(raw[:offset] + flip + raw[offset + 1 :])

        try:
            JobStore(damaged, clock=ManualClock(), sync=False)
        except JournalCorruptError:
            pass
        else:
            raise AssertionError(
                "damaged non-final record replayed silently instead of raising"
            )


@settings(max_examples=25, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_TRAJECTORIES) - 1),
        min_size=1,
        max_size=4,
    )
)
def test_replay_is_deterministic_and_append_preserving(picks):
    """Two replays of one journal agree record-for-record, and reopening a
    store then appending continues the history without disturbing it."""
    with tempfile.TemporaryDirectory() as root:
        path = _build_history(root, [_TRAJECTORIES[p] for p in picks])
        first = JobStore(path, clock=ManualClock(), sync=False)
        second = JobStore(path, clock=ManualClock(), sync=False)
        snap = lambda s: [job.to_record() for job in s.jobs()]  # noqa: E731
        assert snap(first) == snap(second)
        before = snap(first)
        second.close()

        # Appending through the reopened store only ever grows the file.
        job, created = first.submit("tenant-z", "faulty", {}, dedupe_key="extra")
        assert created
        records, torn = read_journal(path)
        assert not torn
        assert records[-1]["op"] == "submit"
        assert records[-1]["job_id"] == job.job_id
        reopened = JobStore(path, clock=ManualClock(), sync=False)
        assert snap(reopened) == snap(first)
        assert before == snap(first)[:-1] or before == [
            r for r in snap(first) if r["job_id"] != job.job_id
        ]
        first.close()
        reopened.close()
