"""Unit tests for overload protection: breakers, phi, credits, shedding."""

import math

import pytest

from repro.config import Config
from repro.errors import ConfigError, ParcelDeadLetterError, ParcelShedError
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    OverloadPolicy,
    PhiAccrualDetector,
)
from repro.runtime import context as ctx
from repro.runtime import perfcounters
from repro.runtime.parcel import LoopbackParcelport, Parcel
from repro.runtime.parcel.parcelport import RetryPolicy
from repro.runtime.runtime import Runtime
from repro.runtime.threads.hpx_thread import ThreadPriority
from repro.runtime.trace import Tracer

# Circuit breaker state machine ------------------------------------------------


def test_breaker_opens_after_consecutive_failures():
    breaker = CircuitBreaker(threshold=3, reset_s=1.0)
    assert breaker.allow(0.0) == "send"
    assert not breaker.record_failure(0.0)
    assert not breaker.record_failure(0.0)
    assert breaker.state == "closed"
    assert breaker.record_failure(0.0)  # third consecutive: opens
    assert breaker.state == "open"
    assert breaker.allow(0.5) == "reject"
    assert breaker.retry_after(0.5) == pytest.approx(0.5)


def test_breaker_success_resets_consecutive_count():
    breaker = CircuitBreaker(threshold=2, reset_s=1.0)
    breaker.record_failure(0.0)
    breaker.record_success()
    breaker.record_failure(0.0)  # not consecutive anymore
    assert breaker.state == "closed"


def test_breaker_half_open_probe_then_close():
    breaker = CircuitBreaker(threshold=1, reset_s=1.0)
    assert breaker.record_failure(0.0)
    assert breaker.allow(0.5) == "reject"
    assert breaker.allow(1.0) == "probe"  # reset window elapsed: half-open
    assert breaker.state == "half-open"
    assert breaker.allow(1.0) == "reject"  # one probe at a time
    assert breaker.record_success()  # probe acked: closed again
    assert breaker.state == "closed"
    assert breaker.allow(1.1) == "send"


def test_breaker_half_open_failure_reopens():
    breaker = CircuitBreaker(threshold=1, reset_s=1.0)
    breaker.record_failure(0.0)
    assert breaker.allow(1.0) == "probe"
    assert breaker.record_failure(1.0)  # probe lost: straight back to open
    assert breaker.state == "open"
    assert breaker.retry_after(1.0) == pytest.approx(1.0)


def test_breaker_force_open_is_idempotent():
    breaker = CircuitBreaker(threshold=5, reset_s=1.0)
    assert breaker.force_open(2.0)
    assert not breaker.force_open(3.0)  # already open: no second transition
    assert breaker.state == "open"
    assert breaker.opened_at == 2.0


def test_breaker_duplicated_probe_ack_closes_exactly_once():
    """A retransmitted ack of the half-open probe must not report a second
    close transition or corrupt the consecutive-failure count."""
    breaker = CircuitBreaker(threshold=1, reset_s=1.0)
    breaker.record_failure(0.0)
    assert breaker.allow(1.0) == "probe"
    assert breaker.record_success()  # probe acked: the one close transition
    assert not breaker.record_success()  # duplicate ack: no second transition
    assert not breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.failures == 0
    assert not breaker.probing
    assert breaker.allow(1.5) == "send"


def test_breaker_duplicate_ack_does_not_mask_later_failures():
    """Duplicated acks reset nothing extra: the threshold still counts
    consecutive failures from zero, not from a negative balance."""
    breaker = CircuitBreaker(threshold=2, reset_s=1.0)
    breaker.record_failure(0.0)
    breaker.allow(1.0)  # probe window... still closed (threshold not hit)
    breaker.record_success()
    breaker.record_success()  # duplicate
    assert not breaker.record_failure(2.0)  # 1 of 2: must NOT open yet
    assert breaker.state == "closed"
    assert breaker.record_failure(2.0)  # 2 of 2: opens on schedule
    assert breaker.state == "open"


def test_breaker_stale_ack_in_half_open_closes_without_probe():
    """An ack that raced the reset window (sent pre-open, delivered after
    the breaker went half-open) closes the breaker and releases the
    probe slot -- it never wedges ``probing`` so that no probe can run."""
    breaker = CircuitBreaker(threshold=1, reset_s=1.0)
    breaker.record_failure(0.0)
    assert breaker.allow(1.0) == "probe"  # half-open, probe in flight
    assert breaker.record_success()  # stale/duplicated ack arrives first
    assert breaker.state == "closed"
    assert not breaker.probing
    # The probe's own ack is now just another duplicate.
    assert not breaker.record_success()
    assert breaker.allow(1.2) == "send"


# Phi-accrual detector ---------------------------------------------------------


def test_phi_is_zero_before_two_acks():
    phi = PhiAccrualDetector(window=8)
    assert phi.phi(1, 0.0) == 0.0
    phi.heartbeat(1, 1.0)
    assert phi.phi(1, 2.0) == 0.0  # one ack: no inter-arrival sample yet
    assert phi.suspicion(2.0) == 0.0


def test_phi_matches_exponential_formula():
    phi = PhiAccrualDetector(window=8)
    for t in (1.0, 2.0, 3.0, 4.0):  # mean inter-arrival 1.0
        phi.heartbeat(1, t)
    elapsed = 5.0
    assert phi.phi(1, 4.0 + elapsed) == pytest.approx(elapsed / math.log(10.0))
    # phi = 1 exactly one decade of silence later than expected.
    assert phi.phi(1, 4.0 + math.log(10.0)) == pytest.approx(1.0)


def test_phi_suspicion_is_max_over_peers():
    phi = PhiAccrualDetector(window=8)
    for t in (1.0, 2.0):
        phi.heartbeat(1, t)
        phi.heartbeat(2, t)
    phi.heartbeat(2, 3.0)  # peer 2 acked more recently
    assert phi.suspicion(4.0) == pytest.approx(phi.phi(1, 4.0))
    assert phi.phi(1, 4.0) > phi.phi(2, 4.0)


def test_phi_window_is_bounded():
    phi = PhiAccrualDetector(window=4)
    for t in range(1, 20):
        phi.heartbeat(1, float(t))
    assert len(phi._samples[1]) == 4


# Policy / config --------------------------------------------------------------


def test_policy_from_config_reads_overload_keys():
    config = Config(
        overload__credits=7, overload__phi_suspect=5.0, overload__phi_confirm=9.0, seed=3
    )
    policy = OverloadPolicy.from_config(config)
    assert policy.credits == 7
    assert policy.phi_suspect == 5.0
    assert policy.seed == 3
    assert policy.max_inflight == 64  # untouched keys keep their defaults


def test_config_rejects_inverted_phi_thresholds():
    with pytest.raises(ConfigError):
        Config(overload__phi_throttle=9.0, overload__phi_suspect=5.0)


def test_config_rejects_bad_jitter():
    with pytest.raises(ConfigError):
        Config(parcel__retry_jitter=1.5)


def test_shed_error_is_a_dead_letter_error_with_retry_hint():
    err = ParcelShedError("too busy", retry_after=0.25)
    assert isinstance(err, ParcelDeadLetterError)
    assert err.retry_after == 0.25
    assert ParcelShedError("x").retry_after == 0.0


# Retry jitter (satellite a) ---------------------------------------------------


def test_zero_jitter_keeps_exact_backoff_schedule():
    policy = RetryPolicy(jitter=0.0)
    for attempt in (1, 2, 3):
        assert policy.jittered_timeout(attempt, 0) == policy.timeout(attempt)


def test_jitter_is_seeded_and_downward_only():
    one = RetryPolicy(jitter=0.5, seed=7)
    two = RetryPolicy(jitter=0.5, seed=7)
    other = RetryPolicy(jitter=0.5, seed=8)
    values = [one.jittered_timeout(a, s) for a in (1, 2, 3) for s in (0, 1)]
    assert values == [two.jittered_timeout(a, s) for a in (1, 2, 3) for s in (0, 1)]
    assert values != [other.jittered_timeout(a, s) for a in (1, 2, 3) for s in (0, 1)]
    for attempt in (1, 2, 3):
        base = one.timeout(attempt)
        jittered = one.jittered_timeout(attempt, 0)
        assert base * 0.5 <= jittered <= base  # within [1 - jitter, 1] of base


# Bounded dead-letter queue (satellite b) --------------------------------------


def _parcel(parcel_id_source=0):
    return Parcel(source_locality=parcel_id_source, payload=b"x" * 8, target_locality=1)


def test_dlq_evicts_oldest_first():
    port = LoopbackParcelport()
    port.dlq_max = 2
    parcels = [_parcel() for _ in range(4)]
    for parcel in parcels:
        port._dead_letter(parcel, "test")
    assert len(port.dead_letters) == 2
    assert port.parcels_dlq_evicted == 2
    kept = [parcel for parcel, _reason in port.dead_letters]
    assert kept == parcels[2:]  # the two oldest were evicted


def test_dlq_unbounded_when_dlq_max_is_zero():
    port = LoopbackParcelport()
    assert port.dlq_max == 0
    for _ in range(10):
        port._dead_letter(_parcel(), "test")
    assert len(port.dead_letters) == 10
    assert port.parcels_dlq_evicted == 0


def test_shed_fails_reply_promise_but_is_not_a_dead_letter_count():
    from repro.runtime.futures import Promise

    port = LoopbackParcelport()
    parcel = _parcel()
    parcel.reply_promise = Promise()
    port._shed(parcel, "overloaded", retry_after=0.125)
    assert port.parcels_dead_lettered == 0  # sheds keep the conservation law
    assert len(port.dead_letters) == 1
    with pytest.raises(ParcelShedError) as excinfo:
        parcel.reply_promise.get_future().get()
    assert excinfo.value.retry_after == 0.125


# Credit-based flow control, end to end ----------------------------------------


def _remote_unit() -> int:
    return 1


def _overload_runtime(**overrides):
    defaults = dict(overload__enabled=True, overload__credits=2)
    defaults.update(overrides)
    return Runtime(
        n_localities=2, workers_per_locality=2, config=Config(**defaults)
    )


def _counters(controller):
    return (
        controller.parcels_shed,
        controller.parcels_deferred,
        controller.parcels_completed,
        controller.credit_stalls,
        controller.credit_resumes,
        controller.breaker_opens,
    )


def test_credits_stall_and_resume_without_losing_parcels():
    with _overload_runtime() as rt:

        def main():
            futures = [rt.async_at(1, _remote_unit) for _ in range(10)]
            return sum(f.get() for f in futures)

        assert rt.run(main) == 10
        controller = rt._overload
        assert controller.credit_stalls > 0  # only 2 credits for 10 sends
        assert controller.credit_resumes == controller.credit_stalls
        assert controller.parcels_completed == 10
        assert controller.stalled_count() == 0


def test_controller_duplicated_probe_ack_closes_once_and_stays_closed():
    """A retransmitted ack of the half-open probe reaches the controller
    twice; the breaker closes exactly once, the probe completion is not
    double-counted, and the peer is only un-suspected once."""
    with _overload_runtime() as rt:
        controller = rt._overload
        breaker = controller.breaker(1)
        breaker.force_open(0.0)
        rt.parcelport.suspected_dead.add(1)
        probe = Parcel(source_locality=0, payload=b"x" * 8, target_locality=1)
        controller._probe_ids.add(probe.parcel_id)

        controller.on_ack(probe, 1, 2.0)
        assert breaker.state == "closed"
        assert controller.breaker_closes == 1
        assert controller.parcels_completed == 1
        assert 1 not in rt.parcelport.suspected_dead

        controller.on_ack(probe, 1, 2.5)  # the duplicate
        assert breaker.state == "closed"
        assert breaker.failures == 0
        assert controller.breaker_closes == 1  # no phantom second close
        assert controller.parcels_completed == 1  # not double-counted


def test_controller_duplicated_credit_ack_returns_credit_once():
    """Acking the same credit-holding parcel twice must not mint an extra
    credit: the second delivery sees ``holds_credit`` already cleared."""
    with _overload_runtime() as rt:
        controller = rt._overload
        parcel = Parcel(source_locality=0, payload=b"x" * 8, target_locality=1)
        parcel.holds_credit = True
        controller._inflight[1] = 1

        controller.on_ack(parcel, 1, 1.0)
        assert not parcel.holds_credit
        assert controller.inflight(1) == 0
        assert controller.parcels_completed == 1

        controller.on_ack(parcel, 1, 1.5)  # the duplicate
        assert controller.inflight(1) == 0  # never goes negative
        assert controller.parcels_completed == 1


def test_credit_flow_is_deterministic():
    def run():
        with _overload_runtime() as rt:

            def main():
                futures = [rt.async_at(1, _remote_unit) for _ in range(12)]
                return sum(f.get() for f in futures)

            rt.run(main)
            return (rt.makespan, _counters(rt._overload))

    assert run() == run()


def _slow_sink(cost: float) -> None:
    ctx.add_cost(cost)


def test_low_priority_storm_defers_then_sheds():
    with _overload_runtime(
        overload__credits=1, overload__defer_max=1, overload__defer_base_s=1e-6
    ) as rt:

        def main():
            for _ in range(8):
                rt.apply_at(1, _slow_sink, 1e-2, priority=ThreadPriority.LOW)
            return rt.async_at(1, _remote_unit).get()

        assert rt.run(main) == 1
        controller = rt._overload
        assert controller.parcels_deferred > 0
        assert controller.parcels_shed > 0
        # Shed LOW parcels land in the DLQ tagged as sheds, without
        # inflating the dead-letter *counter* (conservation law).
        assert any("shed:" in reason for _p, reason in rt.parcelport.dead_letters)
        assert rt.parcelport.parcels_dead_lettered == 0
        delivered = controller.parcels_completed
        assert delivered + controller.parcels_shed == 9


def test_same_locality_sends_bypass_admission():
    with _overload_runtime(overload__credits=1) as rt:

        def main():
            futures = [rt.async_at(0, _remote_unit) for _ in range(10)]
            return sum(f.get() for f in futures)

        assert rt.run(main) == 10
        assert rt._overload.credit_stalls == 0
        assert rt._overload.parcels_completed == 0  # no wire, no credits


# Perfcounters and trace events ------------------------------------------------


def test_overload_perfcounters_report_controller_state():
    with _overload_runtime() as rt:

        def main():
            futures = [rt.async_at(1, _remote_unit) for _ in range(10)]
            return sum(f.get() for f in futures)

        rt.run(main)
        controller = rt._overload
        assert perfcounters.query(rt, "/overload{total}/count/completed") == 10.0
        assert (
            perfcounters.query(rt, "/overload{total}/count/credits-stalled")
            == float(controller.credit_stalls)
        )
        assert perfcounters.query(rt, "/breaker{total}/count/opens") == 0.0
        assert perfcounters.query(rt, "/phi{total}/suspicion") >= 0.0
        paths = perfcounters.discover(rt)
        assert "/overload{total}/count/shed" in paths
        assert "/phi{total}/suspicion" in paths


def test_overload_counters_read_zero_when_disabled():
    with Runtime(n_localities=2, workers_per_locality=2) as rt:
        rt.run(lambda: rt.async_at(1, _remote_unit).get())
        assert perfcounters.query(rt, "/overload{total}/count/shed") == 0.0
        assert perfcounters.query(rt, "/breaker{total}/count/opens") == 0.0
        assert perfcounters.query(rt, "/phi{total}/suspicion") == 0.0
        assert "/overload{total}/count/shed" not in perfcounters.discover(rt)


def test_tracer_records_credit_and_shed_events():
    with _overload_runtime(
        overload__credits=1, overload__defer_max=1, overload__defer_base_s=1e-6
    ) as rt:
        tracer = Tracer()
        with tracer.attach(rt):

            def main():
                for _ in range(6):
                    rt.apply_at(1, _slow_sink, 1e-2, priority=ThreadPriority.LOW)
                futures = [rt.async_at(1, _remote_unit) for _ in range(4)]
                return sum(f.get() for f in futures)

            assert rt.run(main) == 4
        kinds = {event.kind for event in tracer.events}
        assert "credit_stall" in kinds
        assert "credit_resume" in kinds
        assert "parcel_deferred" in kinds
        assert "parcel_shed" in kinds


def test_dlq_shrink_mid_run_keeps_counters_reconciled():
    """Shrinking ``dlq_max`` while entries exist must evict immediately
    and keep the conservation law ``len(dead_letters) == dead_lettered +
    shed_lettered - dlq_evicted`` true at every step."""
    port = LoopbackParcelport()
    port.install_router(lambda parcel, arrival: None)
    port.fault_injector = FaultInjector(seed=0, drop_rate=1.0)
    port.retry_policy = RetryPolicy(enabled=False)

    def reconciled():
        assert len(port.dead_letters) == (
            port.parcels_dead_lettered
            + port.parcels_shed_lettered
            - port.parcels_dlq_evicted
        )

    # Unbounded phase: 4 dead letters + 2 sheds accumulate.
    for _ in range(4):
        port.send(_parcel())
        reconciled()
    for _ in range(2):
        port._shed(_parcel(), "overloaded", retry_after=0.1)
        reconciled()
    assert len(port.dead_letters) == 6
    assert port.parcels_dlq_evicted == 0

    # Shrink mid-run: the oldest entries go at once, counted as evicted.
    port.dlq_max = 3
    reconciled()
    assert len(port.dead_letters) == 3
    assert port.parcels_dlq_evicted == 3

    # Under the new bound every further entry evicts one: the cumulative
    # dead-letter counters keep growing while the queue stays pinned.
    for _ in range(3):
        port.send(_parcel())
        reconciled()
        assert len(port.dead_letters) == 3
    assert port.parcels_dead_lettered == 7
    assert port.parcels_shed_lettered == 2
    assert port.parcels_dlq_evicted == 6


def test_dlq_perfcounters_reconcile_after_shrink():
    """The counter surface exposes the same reconciliation: the
    ``queue/dead-letter`` gauge always equals dead-lettered plus
    shed-lettered minus evicted."""
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        port = rt.parcelport
        for _ in range(5):
            port._dead_letter(_parcel(), "test")
            port.parcels_dead_lettered += 1
        port._shed(_parcel(), "overloaded")
        port.dlq_max = 2  # mid-run shrink: evicts 4 of the 6 entries

        def gauge(path):
            return perfcounters.query(rt, path)

        assert gauge("/parcels{total}/queue/dead-letter") == float(
            len(port.dead_letters)
        )
        assert gauge("/parcels{total}/queue/dead-letter") == (
            gauge("/parcels{total}/count/dead-lettered")
            + gauge("/parcels{total}/count/shed-lettered")
            - gauge("/parcels{total}/count/dead-letter-evicted")
        )
        assert gauge("/parcels{total}/count/dead-letter-evicted") == 4.0
        assert "/parcels{total}/queue/dead-letter" in perfcounters.discover(rt)
