"""Execution backends: virtual-clock simulation or real multi-core.

See :mod:`repro.runtime.backend.base` for the interface contract,
:mod:`~repro.runtime.backend.virtual` for the deterministic default, and
:mod:`~repro.runtime.backend.multiprocess` for the process-per-locality
backend that turns the same program into real concurrent work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import ConfigError
from .base import ExecutionBackend
from .virtual import VirtualClockBackend

if TYPE_CHECKING:  # pragma: no cover
    from ...config import Config

__all__ = ["ExecutionBackend", "VirtualClockBackend", "create_backend"]


def create_backend(config: "Config") -> ExecutionBackend:
    """Instantiate the backend named by ``runtime.backend``."""
    name = config.get_str("runtime.backend")
    if name == "virtual":
        return VirtualClockBackend()
    if name == "multiprocess":
        from .multiprocess import MultiprocessBackend

        return MultiprocessBackend()
    raise ConfigError(f"unknown runtime.backend {name!r}")  # pragma: no cover
