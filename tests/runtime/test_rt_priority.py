"""Unit tests for thread priorities across all schedulers."""

import pytest

from repro.runtime.threads.hpx_thread import HpxThread, ThreadPriority
from repro.runtime.threads.pool import ThreadPool
from repro.runtime.threads.scheduler import make_scheduler


def task(priority=ThreadPriority.NORMAL, name="t"):
    return HpxThread(lambda: None, description=name, priority=priority)


def test_default_priority_is_normal():
    assert HpxThread(lambda: None).priority == ThreadPriority.NORMAL


def test_priority_ordering_values():
    assert ThreadPriority.HIGH > ThreadPriority.NORMAL > ThreadPriority.LOW


@pytest.mark.parametrize("scheduler_name", ["fifo", "static", "work-stealing"])
def test_high_priority_runs_first(scheduler_name):
    sched = make_scheduler(scheduler_name, 1)
    low = task(ThreadPriority.LOW, "low")
    normal = task(ThreadPriority.NORMAL, "normal")
    high = task(ThreadPriority.HIGH, "high")
    for t in (low, normal, high):
        sched.push(t, worker_hint=0)
    order = [sched.acquire(0).description for _ in range(3)]
    assert order == ["high", "normal", "low"]


def test_fifo_within_priority_level():
    sched = make_scheduler("fifo", 1)
    tasks = [task(ThreadPriority.NORMAL, f"n{i}") for i in range(4)]
    for t in tasks:
        sched.push(t)
    order = [sched.acquire(0).description for _ in range(4)]
    assert order == ["n0", "n1", "n2", "n3"]


def test_thieves_steal_high_priority_first():
    sched = make_scheduler("work-stealing", 2)
    sched.push(task(ThreadPriority.LOW, "low"), worker_hint=1)
    sched.push(task(ThreadPriority.HIGH, "high"), worker_hint=1)
    stolen = sched.acquire(0)  # worker 0 steals from worker 1
    assert stolen.description == "high"


def test_pool_submit_priority_end_to_end():
    pool = ThreadPool(1)
    order = []
    pool.submit(lambda: order.append("normal"))
    pool.submit(lambda: order.append("low"), priority=ThreadPriority.LOW)
    pool.submit(lambda: order.append("high"), priority=ThreadPriority.HIGH)
    pool.run_all()
    assert order == ["high", "normal", "low"]


def test_priority_does_not_break_counts():
    sched = make_scheduler("work-stealing", 2)
    for i in range(10):
        sched.push(task(ThreadPriority(i % 3)))
    assert len(sched) == 10
    got = 0
    while any(sched.acquire(w) for w in range(2)):
        got += 1
    assert len(sched) == 0
