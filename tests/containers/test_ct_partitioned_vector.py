"""Tests for the distributed partitioned vector."""

import operator

import numpy as np
import pytest

from repro.containers import PartitionedVector
from repro.errors import ValidationError
from repro.runtime import Runtime
from repro.runtime.actions import action


@action(name="pv.double")
def double_segment(data):
    return data * 2.0


@action(name="pv.sum")
def sum_segment(data):
    return float(np.sum(data))


@pytest.fixture
def cluster():
    with Runtime(machine="xeon-e5-2660v3", n_localities=3, workers_per_locality=2) as rt:
        yield rt


def test_construction_and_gather(cluster):
    vec = PartitionedVector(cluster, 10, initial=1.5)
    assert len(vec) == 10
    assert np.allclose(cluster.run(vec.to_array), np.full(10, 1.5))


def test_construction_from_array(cluster):
    data = np.arange(11.0)
    vec = PartitionedVector(cluster, 11, initial=data)
    assert np.array_equal(cluster.run(vec.to_array), data)


def test_segments_cover_the_index_space(cluster):
    vec = PartitionedVector(cluster, 10)
    covered = []
    for i in range(10):
        seg, off = vec.segment_of(i)
        covered.append((seg, off))
    assert len(set(covered)) == 10
    segs = {seg for seg, _ in covered}
    assert segs == set(range(vec.n_segments))


def test_element_access_across_localities(cluster):
    vec = PartitionedVector(cluster, 9, initial=0.0)

    def main():
        for i in range(9):
            vec.set(i, float(i * i))
        return [vec.get(i) for i in range(9)]

    assert cluster.run(main) == [float(i * i) for i in range(9)]


def test_elements_live_on_different_localities(cluster):
    vec = PartitionedVector(cluster, 9)
    homes = {vec.home_of(i) for i in range(9)}
    assert homes == {0, 1, 2}  # block distribution over all three


def test_fill_and_map_inplace(cluster):
    vec = PartitionedVector(cluster, 12)

    def main():
        vec.fill(3.0)
        vec.map_inplace("pv.double")
        return vec.to_array()

    assert np.allclose(cluster.run(main), np.full(12, 6.0))


def test_map_with_module_level_function(cluster):
    vec = PartitionedVector(cluster, 6, initial=2.0)
    cluster.run(lambda: vec.map_inplace(double_segment))
    assert np.allclose(cluster.run(vec.to_array), np.full(6, 4.0))


def test_reduce(cluster):
    vec = PartitionedVector(cluster, 10, initial=np.arange(10.0))
    total = cluster.run(lambda: vec.reduce("pv.sum", operator.add, 0.0))
    assert total == pytest.approx(45.0)


def test_migration_keeps_indices_valid(cluster):
    vec = PartitionedVector(cluster, 9, initial=np.arange(9.0))

    def main():
        before = vec.get(0)
        vec.migrate_segment(0, 2)
        after = vec.get(0)
        return before, after, vec.home_of(0)

    before, after, home = cluster.run(main)
    assert before == after == 0.0
    assert home == 2


def test_more_segments_than_localities(cluster):
    vec = PartitionedVector(cluster, 12, segments_per_locality=2)
    assert vec.n_segments == 6
    assert np.allclose(cluster.run(vec.to_array), np.zeros(12))


def test_tiny_vector_fewer_segments_than_localities(cluster):
    vec = PartitionedVector(cluster, 2)
    assert vec.n_segments == 2
    cluster.run(lambda: vec.set(1, 7.0))
    assert cluster.run(lambda: vec.get(1)) == 7.0


def test_validation(cluster):
    with pytest.raises(ValidationError):
        PartitionedVector(cluster, 0)
    with pytest.raises(ValidationError):
        PartitionedVector(cluster, 4, segments_per_locality=0)
    with pytest.raises(ValidationError):
        PartitionedVector(cluster, 4, initial=np.zeros(5))
    vec = PartitionedVector(cluster, 4)
    with pytest.raises(ValidationError):
        vec.segment_of(4)
    with pytest.raises(ValidationError):
        vec.migrate_segment(99, 0)


def test_segment_transform_shape_guard(cluster):
    @action(name="pv.bad_transform")
    def bad(data):
        return data[:-1]

    vec = PartitionedVector(cluster, 6)
    with pytest.raises(ValidationError):
        cluster.run(lambda: vec.map_inplace("pv.bad_transform"))


def test_remote_access_costs_network_time(cluster):
    vec = PartitionedVector(cluster, 9)
    before = cluster.makespan
    cluster.run(lambda: vec.get(8))  # lives on locality 2
    assert cluster.makespan > before
