"""Leases (temporal ownership) and the bounded retry budget."""

import pytest

from repro.errors import ConfigError, JobStateError
from repro.service import Lease, LeaseManager, ManualClock, RetryBudget


@pytest.fixture()
def clock():
    return ManualClock()


@pytest.fixture()
def leases(clock):
    return LeaseManager(clock, lease_seconds=10.0)


class TestLeases:
    def test_grant_and_holder(self, leases, clock):
        lease = leases.grant("j1", "w1")
        assert lease == Lease("j1", "w1", granted_at=0.0, expires_at=10.0)
        assert leases.holder("j1") == lease
        assert len(leases) == 1

    def test_double_grant_refused_while_live(self, leases):
        leases.grant("j1", "w1")
        with pytest.raises(JobStateError, match="already leased"):
            leases.grant("j1", "w2")

    def test_expired_lease_can_be_regranted(self, leases, clock):
        leases.grant("j1", "w1")
        clock.advance(10.0)  # expiry is inclusive: now >= expires_at
        lease = leases.grant("j1", "w2")
        assert lease.owner == "w2"

    def test_renew_extends_only_live_own_leases(self, leases, clock):
        leases.grant("j1", "w1")
        clock.advance(6.0)
        renewed = leases.renew("j1", "w1")
        assert renewed.expires_at == 16.0
        assert renewed.granted_at == 0.0  # original grant time preserved
        with pytest.raises(JobStateError, match="holds no lease"):
            leases.renew("j1", "w2")
        clock.advance(11.0)
        with pytest.raises(JobStateError, match="expired"):
            leases.renew("j1", "w1")

    def test_release_is_owner_scoped(self, leases):
        leases.grant("j1", "w1")
        leases.release("j1", "w2")  # foreign release: no-op
        assert leases.holder("j1") is not None
        leases.release("j1", "w1")
        assert leases.holder("j1") is None

    def test_expired_harvests_and_drops(self, leases, clock):
        leases.grant("a", "w1")
        clock.advance(5.0)
        leases.grant("b", "w2")
        clock.advance(5.0)  # "a" expired, "b" has 5s left
        dead = leases.expired()
        assert [lease.job_id for lease in dead] == ["a"]
        assert leases.holder("a") is None
        assert leases.holder("b") is not None
        assert leases.expired() == []  # harvest is one-shot

    def test_revoke_unconditional(self, leases):
        leases.grant("j1", "w1")
        leases.revoke("j1")
        assert leases.holder("j1") is None
        leases.revoke("j1")  # idempotent

    def test_config_validation(self, clock):
        with pytest.raises(ConfigError):
            LeaseManager(clock, lease_seconds=0.0)


class TestRetryBudget:
    def test_capped_exponential_backoff(self):
        budget = RetryBudget(base_seconds=0.5, factor=2.0, cap_seconds=3.0)
        assert [budget.delay(n) for n in range(5)] == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_exhaustion_is_attempt_bounded(self):
        budget = RetryBudget()
        assert not budget.exhausted(2, 3)
        assert budget.exhausted(3, 3)
        assert budget.exhausted(4, 3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryBudget(base_seconds=0.0)
        with pytest.raises(ConfigError):
            RetryBudget(factor=0.5)
        with pytest.raises(ConfigError):
            RetryBudget(base_seconds=2.0, cap_seconds=1.0)
        with pytest.raises(ValueError):
            RetryBudget().delay(-1)
