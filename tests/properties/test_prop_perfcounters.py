"""Property-based tests for performance-counter discovery.

The contract behind ``discover()`` is that every path it lists is
*live*: querying it on the same runtime returns a float, whatever the
scheduler, topology, or workload.  This is what keeps dashboards and
the counter-sampling layer from ever hitting a path that lists but
does not evaluate.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Config
from repro.runtime import Runtime, async_, perfcounters
from repro.runtime import context as ctx

SCHEDULERS = ("fifo", "static", "work-stealing")


@given(
    scheduler=st.sampled_from(SCHEDULERS),
    n_localities=st.integers(min_value=1, max_value=2),
    workers=st.integers(min_value=1, max_value=3),
    n_tasks=st.integers(min_value=0, max_value=8),
    remote=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_every_discovered_path_queries(
    scheduler, n_localities, workers, n_tasks, remote
):
    config = Config.from_mapping({"threads.scheduler": scheduler})
    with Runtime(
        n_localities=n_localities, workers_per_locality=workers, config=config
    ) as rt:

        def main():
            futures = [async_(lambda: ctx.add_cost(0.5)) for _ in range(n_tasks)]
            if remote and n_localities > 1:
                futures.append(rt.async_at(1, abs, -1))
            for future in futures:
                future.get()

        rt.run(main)
        paths = perfcounters.discover(rt)
        assert len(paths) == len(set(paths))  # no duplicates
        for path in paths:
            value = perfcounters.query(rt, path)
            assert isinstance(value, float)
            assert value == value  # never NaN


@given(scheduler=st.sampled_from(SCHEDULERS))
@settings(max_examples=3, deadline=None)
def test_discovery_covers_every_worker_instance(scheduler):
    config = Config.from_mapping({"threads.scheduler": scheduler})
    with Runtime(
        n_localities=2, workers_per_locality=2, config=config
    ) as rt:
        paths = perfcounters.discover(rt)
        for loc in (0, 1):
            for worker in (0, 1):
                assert (
                    f"/threads{{locality#{loc}/worker#{worker}}}/time/busy"
                    in paths
                )
