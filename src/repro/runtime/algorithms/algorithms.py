"""The parallel algorithms: for_each, for_loop, transform, reduce, scan.

All of them share one skeleton: partition the index space, run each
chunk as an HPX-thread via the policy's executor (or the current pool),
and combine.  ``seq``/``simd`` policies run inline on the calling
thread.  Results are deterministic regardless of scheduling: reductions
combine in chunk order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, TypeVar

from ...errors import RuntimeStateError
from .. import context as ctx
from ..futures import Future, when_all
from .execution_policy import ExecutionPolicy
from .partitioner import auto_chunk_size, partition

__all__ = [
    "for_each",
    "for_each_block",
    "for_loop",
    "transform",
    "transform_block",
    "reduce_",
    "inclusive_scan",
]

T = TypeVar("T")
R = TypeVar("R")


def _submit_chunks(
    policy: ExecutionPolicy,
    start: int,
    stop: int,
    chunk_body: Callable[[range], Any],
) -> list[Any]:
    """Run ``chunk_body`` over a partition of [start, stop); returns
    per-chunk results in chunk order."""
    n_items = stop - start
    if policy.executor is not None:
        pool = policy.executor.pool
    else:
        frame = ctx.current_or_none()
        pool = frame.pool if frame is not None else None

    # One chunking rule for both paths: the explicit ``chunk_size`` when
    # given, the auto partitioner otherwise (sized for one worker outside
    # any runtime).  The sequential fall-back used to collapse to a
    # single chunk, so chunk-sensitive bodies (per-chunk setup cost,
    # chunk-order reductions) diverged between seq and par runs.
    workers = pool.n_workers if pool is not None else 1
    chunk = policy.chunk_size or auto_chunk_size(n_items, workers)
    if not policy.parallel or pool is None or n_items == 0:
        # Sequential fall-back (also used outside any runtime).
        return [chunk_body(rng) for rng in partition(start, stop, chunk)]

    chunks = partition(start, stop, chunk)
    futures: list[Future] = []
    if policy.executor is not None and hasattr(policy.executor, "chunk_for"):
        # Block executor: bind chunk i to worker i for stable NUMA placement.
        from ..threads.executor import static_chunks

        blocks = static_chunks(n_items, pool.n_workers)
        for worker_id, block in enumerate(blocks):
            if not block:
                continue
            rng = range(start + block.start, start + block.stop)
            futures.append(
                pool.submit(
                    chunk_body, rng, worker=worker_id, description=f"chunk@{worker_id}"
                )
            )
    else:
        for rng in chunks:
            futures.append(pool.submit(chunk_body, rng, description="chunk"))
    return [f.get() for f in when_all(futures).get()]


def _index_space(first: int, last: int) -> tuple[int, int]:
    if last < first:
        raise RuntimeStateError(f"invalid index space [{first}, {last})")
    return first, last


def for_each(
    policy: ExecutionPolicy, sequence: Sequence[T] | range, fn: Callable[[T], Any]
) -> None:
    """Apply ``fn`` to every element (Listing 1's driver).

    For ``range`` inputs the element *is* the index, matching
    ``for_each(policy, begin(range), end(range), f)`` over a counting
    range in the paper's code.
    """
    items = sequence

    def chunk_body(rng: range) -> None:
        for i in rng:
            fn(items[i])

    _submit_chunks(policy, 0, len(items), chunk_body)


def for_each_block(
    policy: ExecutionPolicy, first: int, last: int, body: Callable[[range], Any]
) -> None:
    """Fused block execution: ``body(chunk_range)`` once per chunk.

    The fast path behind :func:`for_each` for vectorizable bodies: the
    index space is partitioned exactly as :func:`for_each` would
    partition it (same chunk count, same HPX-thread per chunk, so the
    virtual makespan is identical), but instead of one ``fn(i)`` Python
    call per element the chunk's whole index range is handed to ``body``
    in one call -- letting it update a contiguous numpy block with a
    handful of vectorized operations.  The caller promises that
    ``body(range(a, c))`` computes bit-identically to ``body(range(a,
    b))`` followed by ``body(range(b, c))`` -- true for elementwise and
    stencil updates that read only the previous time level.
    """
    first, last = _index_space(first, last)
    _submit_chunks(policy, first, last, body)


def for_loop(
    policy: ExecutionPolicy, first: int, last: int, fn: Callable[[int], Any]
) -> None:
    """Apply ``fn`` to every index in ``[first, last)`` (HPX ``for_loop``)."""
    first, last = _index_space(first, last)

    def chunk_body(rng: range) -> None:
        for i in rng:
            fn(i)

    _submit_chunks(policy, first, last, chunk_body)


def transform(
    policy: ExecutionPolicy, sequence: Sequence[T], fn: Callable[[T], R]
) -> list[R]:
    """Map ``fn`` over the sequence; results in input order."""
    items = list(sequence)

    def chunk_body(rng: range) -> list[R]:
        return [fn(items[i]) for i in rng]

    parts = _submit_chunks(policy, 0, len(items), chunk_body)
    return [value for part in parts for value in part]


def transform_block(
    policy: ExecutionPolicy,
    first: int,
    last: int,
    body: Callable[[range], Sequence[R]],
) -> list[R]:
    """Fused :func:`transform`: ``body(chunk_range)`` returns the chunk's
    results as a sequence; chunks concatenate in index order.  Same
    partitioning and task structure as :func:`transform`, minus the
    per-element Python call -- ``body`` may produce its slice of the
    output with vectorized operations.
    """
    first, last = _index_space(first, last)
    parts = _submit_chunks(policy, first, last, body)
    return [value for part in parts for value in part]


def reduce_(
    policy: ExecutionPolicy,
    sequence: Iterable[T],
    init: R,
    op: Callable[[R, T], R],
) -> R:
    """Fold the sequence with ``op`` (chunk-parallel, combined in order).

    ``op`` must be associative for the parallel result to equal the
    sequential one (the property tests check exactly this contract).
    """
    items = list(sequence)

    def chunk_body(rng: range) -> list[T]:
        # Reduce the chunk without the global init to stay associative.
        if not rng:
            return []
        acc = items[rng.start]
        for i in rng[1:]:
            acc = op(acc, items[i])
        return [acc]

    parts = _submit_chunks(policy, 0, len(items), chunk_body)
    result = init
    for part in parts:
        for value in part:
            result = op(result, value)
    return result


def inclusive_scan(
    policy: ExecutionPolicy,
    sequence: Sequence[T],
    op: Callable[[T, T], T],
) -> list[T]:
    """Inclusive prefix ``op`` (two-pass chunk-parallel scan).

    Pass 1 scans each chunk independently; pass 2 folds the chunk totals
    left-to-right and offsets each chunk -- the textbook parallel scan.
    """
    items = list(sequence)
    if not items:
        return []

    def chunk_body(rng: range) -> list[T]:
        out: list[T] = []
        acc: T | None = None
        for i in rng:
            acc = items[i] if acc is None else op(acc, items[i])
            out.append(acc)
        return out

    parts = _submit_chunks(policy, 0, len(items), chunk_body)
    result: list[T] = []
    carry: T | None = None
    for part in parts:
        if carry is None:
            result.extend(part)
        else:
            result.extend(op(carry, value) for value in part)
        if result:
            carry = result[-1]
    return result
