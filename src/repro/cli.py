"""Command-line interface: ``python -m repro <command>``.

Commands mirror the evaluation workflow:

* ``machines``                    -- list the calibrated machine models
* ``exhibits [NAME ...]``         -- render paper exhibits (default: all)
* ``stream --machine M``          -- STREAM COPY curve for one machine
* ``stencil1d --machine M``       -- Fig 3 rows for one machine
* ``stencil2d --machine M``       -- Fig 4-8 curve for one machine
* ``counters --machine M``        -- the machine's counter table; with
                                     ``--sample-interval DT`` instead
                                     sample *runtime* counters every DT
                                     virtual seconds over the
                                     distributed demo (CSV/JSON)
* ``trace``                       -- run the distributed demo and print a
                                     virtual-time Gantt chart (latency
                                     hiding, visibly); ``--export F``
                                     writes Chrome trace-event JSON for
                                     Perfetto, ``--metrics F`` a metrics
                                     artifact (counters + histograms)
* ``analyze``                     -- the ParalleX sanitizer suite:
                                     ``--races`` / ``--deadlocks`` run the
                                     distributed demo under the dynamic
                                     detectors, ``--lint`` the static
                                     pass (default: all three)
* ``bench``                       -- the perf-regression suite: real
                                     wall-clock cost of the runtime's hot
                                     paths plus the virtual-time results
                                     they produce, written as
                                     schema-versioned JSON; ``--baseline``
                                     diffs against a committed artifact
                                     (see ``docs/performance.md``)
* ``run``                         -- run a distributed stencil end-to-end,
                                     optionally under a seeded fault
                                     schedule (``--crash LOC@T``,
                                     ``--drop-rate``) with checkpoint
                                     restart (``--checkpoint-every K``)
                                     and/or a LOW-priority parcel storm
                                     with overload protection enabled
                                     (``--overload FACTOR``); verifies
                                     the result is bit-identical to a
                                     fault-free run and prints the
                                     resilience/overload counters.
                                     ``--backend multiprocess
                                     [--processes N]`` runs the primary
                                     execution on real OS processes and
                                     checks it bit-identical against the
                                     virtual-clock reference.
                                     Exit codes: 0 ok, 1 bit-identity
                                     mismatch, 2 usage, 3 unexpected
                                     application failure (structured
                                     summary on stderr)
* ``jobs``                        -- the durable multi-tenant job service
                                     (see ``docs/job-service.md``):
                                     ``submit``/``status``/``cancel``/
                                     ``list``/``counters`` manage jobs in
                                     a service directory, ``work`` runs a
                                     worker loop, ``serve`` the asyncio
                                     HTTP gateway, ``chaos`` the kill -9
                                     crash-restart storm CI runs nightly
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from . import exhibits
from .hardware.registry import machine, machine_names
from .perf.cost import stencil1d_time, stencil2d_glups
from .perf.stream import stream_model
from .reporting import Series, format_figure, format_table

__all__ = ["main", "build_parser"]

_EXHIBIT_RENDERERS = {
    "table1": exhibits.render_table1,
    "table2": exhibits.render_table2,
    "fig2": exhibits.render_fig2,
    "fig3": exhibits.render_fig3,
    "fig4": lambda: exhibits.render_fig_2d("xeon-e5-2660v3"),
    "fig5": lambda: exhibits.render_fig_2d("kunpeng916"),
    "fig6": lambda: exhibits.render_fig_2d("a64fx"),
    "fig7": lambda: exhibits.render_fig_2d(
        "a64fx", __import__("repro.perf.cost", fromlist=["x"]).PAPER_GRID_2D_LARGE
    ),
    "fig8": lambda: exhibits.render_fig_2d("thunderx2"),
    "table3": lambda: exhibits.render_counter_table("xeon-e5-2660v3"),
    "table4": lambda: exhibits.render_counter_table("kunpeng916"),
    "table5": lambda: exhibits.render_counter_table("a64fx"),
    "table6": lambda: exhibits.render_counter_table("thunderx2"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Performance Evaluation of ParalleX "
        "Execution model on Arm-based Platforms' (CLUSTER 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="list the calibrated machine models")

    p_ex = sub.add_parser("exhibits", help="render paper exhibits")
    p_ex.add_argument(
        "names",
        nargs="*",
        choices=[[], *sorted(_EXHIBIT_RENDERERS)],  # empty means all
        help="which exhibits (default: all)",
    )

    def machine_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--machine",
            required=True,
            choices=machine_names(),
            help="machine model name",
        )

    p_stream = sub.add_parser("stream", help="STREAM COPY curve")
    machine_arg(p_stream)
    p_stream.add_argument("--pinning", default="compact", choices=("compact", "scatter"))

    p_1d = sub.add_parser("stencil1d", help="1D distributed stencil times")
    machine_arg(p_1d)
    p_1d.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8])
    p_1d.add_argument("--weak", action="store_true", help="weak scaling")

    p_2d = sub.add_parser("stencil2d", help="2D stencil GLUP/s curve")
    machine_arg(p_2d)
    p_2d.add_argument("--dtype", default="float32", choices=("float32", "float64"))
    p_2d.add_argument("--mode", default="simd", choices=("auto", "simd"))

    p_cnt = sub.add_parser(
        "counters",
        help="hardware-counter table, or runtime-counter sampling "
        "with --sample-interval",
    )
    machine_arg(p_cnt)
    p_cnt.add_argument(
        "--sample-interval",
        type=float,
        metavar="DT",
        help="sample runtime counters every DT virtual seconds over the "
        "distributed 1D stencil demo instead of printing the hardware table",
    )
    p_cnt.add_argument("--nodes", type=int, default=2)
    p_cnt.add_argument("--steps", type=int, default=6)
    p_cnt.add_argument(
        "--paths",
        nargs="+",
        metavar="PATH",
        help="counter paths to sample (default: a standard set)",
    )
    p_cnt.add_argument("--format", default="csv", choices=("csv", "json"))
    p_cnt.add_argument(
        "--output", metavar="FILE", help="write the series here instead of stdout"
    )

    p_trace = sub.add_parser(
        "trace", help="run the distributed demo and print a Gantt chart"
    )
    p_trace.add_argument("--nodes", type=int, default=2)
    p_trace.add_argument("--steps", type=int, default=6)
    p_trace.add_argument(
        "--export",
        metavar="FILE",
        help="also write Chrome trace-event JSON (Perfetto / chrome://tracing)",
    )
    p_trace.add_argument(
        "--metrics",
        metavar="FILE",
        help="also write a metrics artifact (counters + latency histograms)",
    )

    p_an = sub.add_parser(
        "analyze",
        help="ParalleX sanitizers: race/deadlock detection over the "
        "distributed demo, plus the repro-specific lint pass",
    )
    p_an.add_argument(
        "--races",
        action="store_true",
        help="happens-before race detection over the distributed demo",
    )
    p_an.add_argument(
        "--deadlocks",
        action="store_true",
        help="wait-for-graph deadlock detection over the distributed demo",
    )
    p_an.add_argument(
        "--lint",
        action="store_true",
        help="static lint pass (python -m repro.analysis.lint)",
    )
    p_an.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="paths for --lint (default: src)",
    )
    p_an.add_argument(
        "--json", action="store_true", help="machine-readable lint findings"
    )
    p_an.add_argument(
        "--fix",
        action="store_true",
        help="apply lint auto-fixes in place (PX601 unused imports)",
    )
    p_an.add_argument(
        "--select",
        default="",
        help="lint: comma-separated code prefixes to report (ruff-style)",
    )
    p_an.add_argument(
        "--ignore",
        default="",
        help="lint: comma-separated code prefixes to suppress",
    )
    p_an.add_argument("--nodes", type=int, default=2)
    p_an.add_argument("--steps", type=int, default=4)
    p_an.add_argument(
        "--scheduler",
        default="work-stealing",
        choices=("work-stealing", "static", "fifo"),
        help="scheduler policy for the demo run",
    )
    p_an.add_argument(
        "--explore",
        action="store_true",
        help="systematically explore HPX-thread interleavings of the "
        "registered demo apps and check every terminal schedule against "
        "the invariant oracle (bit-identical results, counters, "
        "conservation, quiescence, no deadlock, race-free)",
    )
    p_an.add_argument(
        "--app",
        default="",
        help="explore a single registered app (default: every demo app)",
    )
    p_an.add_argument(
        "--strategy",
        default="dpor",
        choices=("dpor", "exhaustive", "pb", "random"),
        help="schedule enumeration strategy (default: dpor)",
    )
    p_an.add_argument(
        "--budget",
        type=int,
        default=200,
        help="maximum schedules to execute per app (default: 200)",
    )
    p_an.add_argument(
        "--preemptions",
        type=int,
        default=2,
        help="preemption bound for --strategy pb (default: 2)",
    )
    p_an.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for --strategy random",
    )
    p_an.add_argument(
        "--replay",
        metavar="FILE",
        default="",
        help="re-execute a recorded violating schedule deterministically",
    )
    p_an.add_argument(
        "--replay-dir",
        metavar="DIR",
        default="",
        help="write a replay file per violating app into DIR",
    )
    p_an.add_argument(
        "--dot",
        metavar="FILE",
        default="",
        help="write the wait-for graph as Graphviz DOT (with --deadlocks: "
        "the demo run's graph; with --explore: the first deadlock found)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="perf-regression suite: wall-clock hot-path benchmarks with "
        "virtual-time determinism checks (see repro bench --help)",
        add_help=False,
    )
    p_bench.add_argument("bench_args", nargs=argparse.REMAINDER)

    p_run = sub.add_parser(
        "run",
        help="run a distributed stencil under a seeded fault schedule with "
        "checkpoint restart, and verify bit-identical recovery",
    )
    p_run.add_argument(
        "--app",
        default="heat1d",
        choices=("heat1d", "jacobi2d"),
        help="which distributed stencil to run",
    )
    p_run.add_argument("--nodes", type=int, default=4)
    p_run.add_argument("--steps", type=int, default=40)
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="K",
        help="coordinated checkpoint epoch length in steps "
        "(0: checkpoint only when the fault schedule demands one)",
    )
    p_run.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="LOC@T",
        help="permanently crash locality LOC at virtual time T (repeatable)",
    )
    p_run.add_argument("--seed", type=int, default=0, help="fault-injection seed")
    p_run.add_argument(
        "--drop-rate",
        type=float,
        default=0.0,
        help="additionally drop this fraction of parcels (transient faults)",
    )
    p_run.add_argument(
        "--backend",
        default="virtual",
        choices=("virtual", "multiprocess"),
        help="execution backend for the primary run; the reference run "
        "always uses the virtual-clock backend, so a multiprocess run is "
        "verified bit-identical *across backends*",
    )
    p_run.add_argument(
        "--processes",
        type=int,
        default=0,
        metavar="N",
        help="OS process count for --backend multiprocess "
        "(0 or omitted: one process per locality)",
    )
    p_run.add_argument(
        "--overload",
        type=float,
        default=0.0,
        metavar="FACTOR",
        help="drive a FACTOR-x LOW-priority parcel storm (ingress vs drain "
        "rate) at the last locality with overload protection enabled; the "
        "run must stay depth/latency-bounded and finish bit-identically",
    )

    p_jobs = sub.add_parser(
        "jobs",
        help="durable multi-tenant job service: submit/status/cancel/list, "
        "worker loop, HTTP gateway, chaos storm (docs/job-service.md)",
    )
    jobs_sub = p_jobs.add_subparsers(dest="jobs_command", required=True)

    def root_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--root",
            required=True,
            metavar="DIR",
            help="service directory (journal + per-job checkpoint trails); "
            "single-writer: one service process owns it at a time",
        )

    p_submit = jobs_sub.add_parser("submit", help="submit one job (idempotent)")
    root_arg(p_submit)
    p_submit.add_argument("--tenant", required=True)
    p_submit.add_argument(
        "--kind", default="stencil1d", choices=("stencil1d", "faulty")
    )
    p_submit.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="job parameter (repeatable; values parsed as JSON scalars)",
    )
    p_submit.add_argument(
        "--dedupe-key",
        metavar="KEY",
        help="idempotency key: resubmitting with a used key returns the "
        "original job instead of creating a new one",
    )
    p_submit.add_argument("--max-attempts", type=int, metavar="N")
    p_submit.add_argument("--json", action="store_true")

    p_status = jobs_sub.add_parser("status", help="show one job")
    root_arg(p_status)
    p_status.add_argument("job_id")

    p_cancel = jobs_sub.add_parser("cancel", help="cancel a non-terminal job")
    root_arg(p_cancel)
    p_cancel.add_argument("job_id")

    p_list = jobs_sub.add_parser("list", help="list jobs")
    root_arg(p_list)
    p_list.add_argument("--tenant")
    p_list.add_argument(
        "--state",
        choices=("pending", "claimed", "running", "done", "failed", "cancelled"),
    )
    p_list.add_argument("--json", action="store_true")

    p_jcnt = jobs_sub.add_parser(
        "counters", help="per-tenant /jobs{tenant} service counters"
    )
    root_arg(p_jcnt)

    p_work = jobs_sub.add_parser(
        "work", help="run a worker loop over the service directory"
    )
    root_arg(p_work)
    p_work.add_argument("--worker", default="worker-0", metavar="NAME")
    p_work.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle sleep while jobs wait out retry backoff",
    )
    p_work.add_argument("--max-jobs", type=int, metavar="N")
    p_work.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="exit 0 once every job in the store is terminal",
    )
    p_work.add_argument(
        "--epoch-steps",
        type=int,
        default=10,
        metavar="K",
        help="checkpoint the solution every K stencil steps",
    )

    p_serve = jobs_sub.add_parser(
        "serve", help="asyncio HTTP gateway over the service directory"
    )
    root_arg(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)

    p_chaos = jobs_sub.add_parser(
        "chaos",
        help="kill -9 crash-restart storm: submit a multi-tenant job storm, "
        "SIGKILL workers at seeded-random points, drain, and audit "
        "exactly-once terminal states and bit-identical results",
    )
    root_arg(p_chaos)
    p_chaos.add_argument("--tenants", type=int, default=3)
    p_chaos.add_argument("--jobs-per-tenant", type=int, default=3)
    p_chaos.add_argument("--nx", type=int, default=32)
    p_chaos.add_argument("--steps", type=int, default=30)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--max-kills", type=int, default=4)
    p_chaos.add_argument("--json", action="store_true")

    return parser


def _cmd_machines() -> str:
    rows = []
    for name in machine_names():
        m = machine(name)
        rows.append(
            [
                name,
                m.spec.name,
                m.spec.cores_per_node,
                m.spec.numa_domains,
                f"{m.spec.peak_gflops:.0f}",
                f"{m.memory.aggregate_bandwidth(m.spec.cores_per_node):.0f}",
            ]
        )
    return format_table(
        ["id", "model", "cores", "NUMA", "GFLOP/s", "STREAM GB/s"], rows
    )


def _cmd_exhibits(names: Sequence[str]) -> str:
    selected = list(names) or sorted(_EXHIBIT_RENDERERS)
    parts = [_EXHIBIT_RENDERERS[name]() for name in selected]
    return ("\n\n" + "=" * 78 + "\n\n").join(parts)


def _cmd_stream(machine_name: str, pinning: str) -> str:
    m = machine(machine_name)
    series = Series(m.spec.name)
    for cores in range(1, m.spec.cores_per_node + 1):
        series.add(cores, stream_model(m, cores, pinning=pinning).bandwidth_gbs)
    return format_figure(
        f"STREAM COPY, {m.spec.name} ({pinning} pinning)",
        [series],
        xlabel="cores",
        ylabel="GB/s",
        y_format="{:.1f}",
    )


def _cmd_stencil1d(machine_name: str, nodes: Sequence[int], weak: bool) -> str:
    m = machine(machine_name)
    series = Series(m.spec.name)
    for n in nodes:
        if weak:
            series.add(n, stencil1d_time(m, n, points_per_node=480_000_000))
        else:
            series.add(n, stencil1d_time(m, n))
    label = "weak (480e6 pts/node)" if weak else "strong (1.2e9 pts)"
    return format_figure(
        f"1D stencil {label}, {m.spec.name}",
        [series],
        xlabel="nodes",
        ylabel="seconds",
        y_format="{:.2f}",
    )


def _cmd_stencil2d(machine_name: str, dtype: str, mode: str) -> str:
    m = machine(machine_name)
    np_dtype = np.float32 if dtype == "float32" else np.float64
    series = Series(f"{dtype}/{mode}")
    cores_grid = [1] + list(range(8, m.spec.cores_per_node + 1, 8))
    if cores_grid[-1] != m.spec.cores_per_node:
        cores_grid.append(m.spec.cores_per_node)
    for cores in cores_grid:
        series.add(cores, stencil2d_glups(m, np_dtype, mode, cores))
    return format_figure(
        f"2D stencil, {m.spec.name}",
        [series],
        xlabel="cores",
        ylabel="GLUP/s",
        y_format="{:.2f}",
    )


def _cmd_trace(
    n_nodes: int,
    steps: int,
    export: str | None = None,
    metrics: str | None = None,
) -> str:
    from .observability import collect_metrics
    from .reporting import write_metrics_json
    from .runtime import Runtime
    from .runtime.trace import Tracer
    from .stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    tracer = Tracer()
    with Runtime(
        machine="xeon-e5-2660v3", n_localities=n_nodes, workers_per_locality=2
    ) as rt:
        solver = DistributedHeat1D(
            rt, 64 * n_nodes, Heat1DParams(), cost_per_step=1.0
        )
        solver.initialize(analytic_heat_profile(64 * n_nodes))
        with tracer.attach(rt):
            rt.run(lambda: solver.run(steps))
        footer = ""
        if export:
            tracer.export_chrome_trace(export)
            footer += (
                f"\nwrote Chrome trace-event JSON to {export} "
                "(open in https://ui.perfetto.dev or chrome://tracing)"
            )
        if metrics:
            collected = collect_metrics(rt, tracer)
            write_metrics_json(
                metrics,
                counters=collected["counters"],
                histograms=collected["histograms"],
                meta={"nodes": n_nodes, "steps": steps},
            )
            footer += f"\nwrote metrics artifact to {metrics}"
    header = (
        f"Distributed 1D stencil, {n_nodes} localities x 2 workers, "
        f"{steps} steps of 1 (virtual) second each.\n"
        "Solid lanes: halo exchange is fully hidden under compute.\n"
    )
    return header + tracer.render_gantt(min_duration=0.5, exclude="hpx_main") + footer


def _cmd_analyze_dynamic(
    races: bool,
    deadlocks: bool,
    n_nodes: int,
    steps: int,
    scheduler: str,
    dot_path: str = "",
) -> tuple[str, int]:
    """Run the distributed 1D demo under the dynamic sanitizers."""
    from . import analysis
    from .config import Config
    from .errors import DataRaceError, DeadlockError
    from .runtime import Runtime
    from .stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    demo = f"{n_nodes}x2 heat1d demo, {scheduler} scheduler, {steps} steps"
    lines: list[str] = []
    status = 0
    config = Config(threads__scheduler=scheduler, runtime__quiescence="raise")
    with analysis.attach(
        races=races, deadlocks=deadlocks, report="collect"
    ) as sanitizers:
        try:
            with Runtime(
                machine="xeon-e5-2660v3",
                n_localities=n_nodes,
                workers_per_locality=2,
                config=config,
            ) as rt:
                solver = DistributedHeat1D(
                    rt, 64 * n_nodes, Heat1DParams(), cost_per_step=1.0
                )
                solver.initialize(analytic_heat_profile(64 * n_nodes))
                rt.run(lambda: solver.run(steps))
        except DeadlockError as exc:
            status = 1
            lines.append(f"DEADLOCK ({demo}):\n  {str(exc)}")
        else:
            if deadlocks:
                lines.append(f"deadlocks: none -- {demo} quiesced cleanly")
        if races and sanitizers.race is not None:
            found: Sequence[DataRaceError] = sanitizers.race.findings()
            if found:
                status = 1
                lines.append(f"races: {len(found)} unordered conflicting access(es)")
                for race in found:
                    lines.append("  " + str(race).replace("\n", "\n  "))
            else:
                lines.append(f"races: none -- {demo} is happens-before clean")
        if dot_path and sanitizers.deadlock is not None:
            graph = (
                sanitizers.deadlock.last_graph
                or sanitizers.deadlock.wait_graph()
            )
            with open(dot_path, "w", encoding="utf-8") as fh:
                fh.write(graph.to_dot())
            lines.append(f"wait-graph DOT written to {dot_path}")
    return "\n".join(lines), status


def _cmd_analyze_explore(args: argparse.Namespace) -> int:
    """Schedule-space exploration over the registered demo apps."""
    import os

    from .analysis import explore as explore_mod

    names = [args.app] if args.app else list(explore_mod.DEMO_APPS)
    status = 0
    dot_path = args.dot
    for name in names:
        app = explore_mod.get_app(name)
        replay_path = None
        if args.replay_dir:
            os.makedirs(args.replay_dir, exist_ok=True)
            replay_path = os.path.join(
                args.replay_dir, name.replace("/", "_") + ".replay.json"
            )
        report = explore_mod.explore(
            app,
            strategy=args.strategy,
            budget=args.budget,
            preemptions=args.preemptions,
            seed=args.seed,
            replay_path=replay_path,
        )
        print(report.summary())
        violation = report.violation
        if violation is not None:
            status = 1
            print("  " + violation.describe().replace("\n", "\n  "))
            if report.replay_path:
                print(f"  replay written to {report.replay_path}")
            if dot_path and violation.graph_dot:
                with open(dot_path, "w", encoding="utf-8") as fh:
                    fh.write(violation.graph_dot)
                print(f"  wait-graph DOT written to {dot_path}")
                dot_path = ""  # first deadlock wins
    return status


def _cmd_analyze_replay(path: str) -> int:
    """Re-execute a recorded violating schedule and verify it."""
    from .analysis import explore as explore_mod

    outcome = explore_mod.replay_file(path)
    print(outcome.summary())
    return 0 if outcome.reproduced else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.replay:
        return _cmd_analyze_replay(args.replay)
    want_races = args.races
    want_deadlocks = args.deadlocks
    want_lint = args.lint
    want_explore = args.explore
    if not (want_races or want_deadlocks or want_lint or want_explore):
        want_races = want_deadlocks = want_lint = True
    status = 0
    if want_races or want_deadlocks:
        text, rc = _cmd_analyze_dynamic(
            want_races,
            want_deadlocks,
            args.nodes,
            args.steps,
            args.scheduler,
            dot_path=args.dot if want_deadlocks else "",
        )
        print(text)
        status |= rc
    if want_explore:
        status |= _cmd_analyze_explore(args)
    if want_lint:
        from .analysis import lint as lint_pass

        lint_argv = list(args.paths) or ["src"]
        if args.json:
            lint_argv.append("--json")
        if args.fix:
            lint_argv.append("--fix")
        if args.select:
            lint_argv.extend(["--select", args.select])
        if args.ignore:
            lint_argv.extend(["--ignore", args.ignore])
        status |= lint_pass.main(lint_argv)
    return status


#: Parcel-storm shape for ``repro run --overload FACTOR``.  With 2
#: workers of drain capacity ``_STORM_WAVE_DT_S / _STORM_SINK_COST_S``
#: tasks each per wave, the target locality drains 4 sink tasks per
#: wave; a wave submits ``4 * FACTOR``, so FACTOR is literally the
#: ingress-to-drain ratio.
_STORM_WAVES = 20
_STORM_SINK_COST_S = 1e-3
_STORM_WAVE_DT_S = 2e-3


def _overload_sink(cost: float) -> None:
    """Storm payload: pure virtual compute at the target locality."""
    from .runtime import context as ctx

    ctx.add_cost(cost)


def _launch_overload_storm(rt, factor: float) -> dict:
    """Chain LOW-priority parcel waves at the last locality.

    Waves ride on locality 0 as self-rescheduling tasks, so the storm
    interleaves with the stencil on the virtual clock.  Each wave
    samples the target's queue depth *before* submitting -- the bounded
    sequence these samples form is the graceful-degradation evidence.
    """
    from .runtime.threads.hpx_thread import ThreadPriority

    target = rt.n_localities - 1
    pool0 = rt.localities[0].pool
    target_pool = rt.localities[target].pool
    per_wave = max(1, int(4 * factor))
    depth_samples: list[int] = []

    def wave(index: int) -> None:
        # Waves form a chain (each submits the next), so appends are
        # totally ordered by construction; no concurrent writer exists.
        depth_samples.append(target_pool.pending())  # repro-lint: disable=PX811
        for _ in range(per_wave):
            rt.apply_at(
                target,
                _overload_sink,
                _STORM_SINK_COST_S,
                priority=ThreadPriority.LOW,
            )
        if index + 1 < _STORM_WAVES:
            pool0.submit(
                wave,
                index + 1,
                ready_time=pool0.now + _STORM_WAVE_DT_S,
                description=f"storm-wave#{index + 1}",
            )

    pool0.submit(wave, 0, description="storm-wave#0")
    return {
        "submitted": per_wave * _STORM_WAVES,
        "depth_samples": depth_samples,
        "target_pool": target_pool,
    }


#: Counters printed after a ``repro run`` (resilience at a glance).
_RUN_COUNTER_PATHS = (
    "/checkpoints{total}/count/saved",
    "/checkpoints{total}/count/restored",
    "/checkpoints{total}/count/fallbacks",
    "/checkpoints{total}/count/corrupt-skipped",
    "/checkpoints{total}/data/saved",
    "/checkpoints{total}/time/save",
    "/checkpoints{total}/time/restore",
    "/localities{total}/count/failed",
    "/localities{total}/count/decommissioned",
    "/parcels{total}/count/dropped",
    "/parcels{total}/count/retried",
    "/parcels{total}/count/dead-lettered",
    "/runtime/uptime",
)


def _run_failure_summary(
    args: argparse.Namespace,
    phase: str,
    exc: Exception,
    crashes: list,
    last_run: dict,
) -> str:
    """Structured summary for an *unexpected* application failure.

    A fault schedule is supposed to be survivable -- the recovery layers
    re-drive dead-lettered work and restart from checkpoints -- so an
    exception escaping ``execute`` is a bug, not an outcome.  It exits
    with code 3 (distinct from 1 = bit-identity mismatch, 2 = usage) and
    reports where the run was when it died instead of a bare traceback.
    """
    lines = [
        "repro run: UNEXPECTED FAILURE (exit 3)",
        f"  phase:              {phase}",
        f"  app:                {args.app}, {args.nodes} localities x 2 workers, "
        f"{args.steps} steps, seed={args.seed}",
        f"  error:              {type(exc).__name__}: {exc}",
    ]
    if crashes:
        lines.append(
            "  crash schedule:     "
            + ", ".join(f"locality {loc} at t={at:g}" for loc, at in crashes)
        )
    if args.drop_rate > 0:
        lines.append(f"  drop rate:          {args.drop_rate:g}")
    solver = last_run.get("solver")
    parts = getattr(solver, "_parts", None) if solver is not None else None
    if parts:
        progress = [part.steps_done for part in parts]
        lines.append(
            f"  partition progress: min {min(progress)} / max {max(progress)} "
            f"of {args.steps} steps"
        )
        if args.checkpoint_every > 0:
            epoch = (min(progress) // args.checkpoint_every) * args.checkpoint_every
            lines.append(
                f"  last checkpoint:    epoch <= step {epoch} "
                f"(epoch length {args.checkpoint_every})"
            )
        else:
            lines.append("  last checkpoint:    none (checkpointing disabled)")
    rt = last_run.get("rt")
    if rt is not None:
        lines.append(
            f"  checkpoints saved:  {rt.checkpoints_saved}, "
            f"restored: {rt.checkpoints_restored}"
        )
        if rt.decommissioned:
            lines.append(
                f"  decommissioned:     localities {sorted(rt.decommissioned)}"
            )
        suspected = sorted(rt.parcelport.suspected_dead)
        if suspected:
            lines.append(f"  suspected dead:     localities {suspected}")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> int:
    """Faulted/overloaded run vs fault-free reference run; compare bits."""
    from .config import Config
    from .errors import ConfigError
    from .observability.metrics import OVERLOAD_COUNTERS
    from .resilience import FaultInjector
    from .runtime import Runtime
    from .runtime.perfcounters import query
    from .runtime.trace import Tracer
    from .stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile
    from .stencil.jacobi2d_dist import DistributedJacobi2D

    crashes: list[tuple[int, float]] = []
    for spec in args.crash:
        try:
            loc_text, time_text = spec.split("@", 1)
            crashes.append((int(loc_text), float(time_text)))
        except ValueError:
            print(f"malformed --crash {spec!r}; expected LOC@T", file=sys.stderr)
            return 2
    resilient = bool(crashes or args.drop_rate > 0)
    if args.backend == "multiprocess" and (resilient or args.overload > 0):
        print(
            "--backend multiprocess cannot combine with --crash, --drop-rate "
            "or --overload: fault injection and the overload storm are "
            "defined on the virtual clock (use --backend virtual)",
            file=sys.stderr,
        )
        return 2
    if args.backend != "multiprocess" and args.processes:
        print("--processes requires --backend multiprocess", file=sys.stderr)
        return 2
    # Progress breadcrumbs for the structured failure summary (exit 3):
    # the innermost run stashes its runtime and solver here so a crash
    # escaping every recovery layer can still be located.
    last_run: dict = {}

    def execute(faulted: bool) -> tuple[np.ndarray, "Runtime", dict]:
        injector = None
        if faulted and resilient:
            injector = FaultInjector(seed=args.seed, drop_rate=args.drop_rate)
            for loc, at in crashes:
                injector.fail_locality(loc, at=at, permanent=True)
        config = None
        if faulted and args.overload > 0:
            # The overloaded run gets the full protection stack; the
            # reference run keeps defaults so "bit-identical" proves the
            # storm + admission decisions never touch the answer.
            config = Config(overload__enabled=True, parcel__retry_jitter=0.25)
        if faulted and args.backend == "multiprocess":
            # Only the primary run crosses process boundaries; the
            # reference stays on the virtual-clock backend, so the final
            # comparison is a cross-backend bit-identity check.
            config = Config(
                runtime__backend="multiprocess",
                runtime__processes=args.processes,
            )
        with Runtime(
            n_localities=args.nodes,
            workers_per_locality=2,
            config=config,
            fault_injector=injector,
        ) as rt:
            last_run["rt"] = rt
            if args.app == "heat1d":
                nx = 16 * args.nodes
                solver = DistributedHeat1D(
                    rt, nx, Heat1DParams(), cost_per_step=1e-3
                )
                solver.initialize(analytic_heat_profile(nx))
            else:
                ny = 4 * args.nodes + 2
                solver = DistributedJacobi2D(rt, ny, 16, cost_per_step=1e-3)
                rng = np.random.default_rng(args.seed)
                solver.initialize(rng.random((ny, 16)))
            last_run["solver"] = solver
            storm: dict = {}
            if faulted and args.overload > 0:
                storm = _launch_overload_storm(rt, args.overload)
            if faulted and resilient:
                job = lambda: solver.run_resilient(  # noqa: E731
                    args.steps, checkpoint_every=args.checkpoint_every
                )
            else:
                job = lambda: solver.run(args.steps)  # noqa: E731
            if storm:
                tracer = Tracer()
                with tracer.attach(rt):
                    out = rt.run(job)
                storm["tracer"] = tracer
            else:
                out = rt.run(job)
            return out, rt, storm

    phase = "faulted run"
    try:
        faulted_out, faulted_rt, storm = execute(faulted=True)
        phase = "fault-free reference run"
        reference_out, _, _ = execute(faulted=False)
    except ConfigError as exc:
        print(f"repro run: configuration error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - reported structurally, exit 3
        print(
            _run_failure_summary(args, phase, exc, crashes, last_run),
            file=sys.stderr,
        )
        return 3
    identical = bool(np.array_equal(faulted_out, reference_out))

    lines = [
        f"{args.app}: {args.nodes} localities x 2 workers, {args.steps} steps, "
        f"checkpoint_every={args.checkpoint_every}, seed={args.seed}, "
        f"backend={args.backend}",
    ]
    if crashes:
        lines.append(
            "crash schedule: "
            + ", ".join(f"locality {loc} at t={at:g}" for loc, at in crashes)
        )
    if args.drop_rate > 0:
        lines.append(f"drop rate: {args.drop_rate:g}")
    counter_paths = list(_RUN_COUNTER_PATHS)
    if args.backend == "multiprocess":
        counter_paths.extend(
            (
                "/backend{total}/count/processes",
                "/backend{total}/count/forwarded",
                "/backend{total}/count/relayed",
                "/backend{total}/count/replies-sent",
                "/backend{total}/count/remote-tasks",
                "/backend{total}/data/sent",
            )
        )
    if storm:
        counter_paths.extend(OVERLOAD_COUNTERS)
    for path in counter_paths:
        lines.append(f"{path:<46} {query(faulted_rt, path):g}")
    if storm:
        depths = storm["depth_samples"]
        latencies = sorted(storm["tracer"].parcel_latencies().values())
        p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
        lines.append(
            f"overload storm: {args.overload:g}x ingress, "
            f"{storm['submitted']} LOW parcels over {_STORM_WAVES} waves"
        )
        lines.append(
            f"target queue depth: max sampled {max(depths, default=0)}, "
            f"peak {storm['target_pool'].peak_pending}"
        )
        lines.append(f"parcel latency p99: {p99:.3g}s virtual")
    lines.append(f"bit-identical with fault-free run: {identical}")
    print("\n".join(lines))
    return 0 if identical else 1


#: Default paths for ``counters --sample-interval``.
_SAMPLE_PATHS = (
    "/threads{total}/count/cumulative",
    "/threads{total}/queue/length",
    "/threads{total}/idle-rate",
    "/parcels{total}/count/sent",
)


def _cmd_counters_sampled(
    machine_name: str,
    n_nodes: int,
    steps: int,
    interval: float,
    paths: Sequence[str] | None,
    fmt: str,
    output: str | None,
) -> str:
    from .observability import sample_counters
    from .runtime import Runtime
    from .stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

    with Runtime(
        machine=machine_name, n_localities=n_nodes, workers_per_locality=2
    ) as rt:
        solver = DistributedHeat1D(
            rt, 64 * n_nodes, Heat1DParams(), cost_per_step=1.0
        )
        solver.initialize(analytic_heat_profile(64 * n_nodes))
        series = sample_counters(
            rt,
            lambda: solver.run(steps),
            paths=list(paths) if paths else list(_SAMPLE_PATHS),
            interval=interval,
        )
    text = series.to_csv() if fmt == "csv" else series.to_json(indent=2)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        return (
            f"wrote {len(series)} samples x {len(series.paths)} counters "
            f"({fmt}) to {output}"
        )
    return text.rstrip("\n")


def _parse_job_params(pairs: Sequence[str]) -> dict:
    """``KEY=VALUE`` pairs -> params dict; values parse as JSON scalars."""
    import json as json_mod

    params: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"malformed --param {pair!r}; expected KEY=VALUE")
        try:
            params[key] = json_mod.loads(value)
        except json_mod.JSONDecodeError:
            params[key] = value  # bare strings are fine unquoted
    return params


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as json_mod
    import time

    from .errors import JobShedError, JobStateError, UnknownJobError
    from .service import JobService, ServicePolicy

    if args.jobs_command == "chaos":
        from .service.chaos import run_storm

        report = run_storm(
            args.root,
            tenants=args.tenants,
            jobs_per_tenant=args.jobs_per_tenant,
            nx=args.nx,
            steps=args.steps,
            seed=args.seed,
            max_kills=args.max_kills,
        )
        if args.json:
            print(json_mod.dumps(report, indent=2))
        else:
            print(
                f"chaos storm: {report['accepted']} jobs accepted, "
                f"{report['kills']} worker kill(s), "
                f"{report['journal_records']} journal records"
                + (" (torn tail tolerated)" if report["torn_tail_seen"] else "")
            )
            print(f"terminal states: {report['states']}")
            for violation in report["violations"]:
                print(f"VIOLATION: {violation}", file=sys.stderr)
        return 0 if not report["violations"] else 1

    if args.jobs_command == "work":
        policy = ServicePolicy(epoch_steps=args.epoch_steps)
        with JobService(args.root, policy=policy) as service:
            settled = 0
            while args.max_jobs is None or settled < args.max_jobs:
                if service.run_one(args.worker) is not None:
                    settled += 1
                    continue
                if not service.open_jobs():
                    if args.exit_when_idle:
                        break
                # Open jobs exist but none is claimable right now
                # (retry backoff / foreign leases); poll on real time --
                # the worker loop is the process boundary.
                time.sleep(args.poll)  # repro-lint: disable=PX101
            print(f"worker {args.worker}: settled {settled} job(s)")
        return 0

    if args.jobs_command == "serve":
        import asyncio

        from .service.gateway import JobGateway

        with JobService(args.root) as service:
            gateway = JobGateway(service, host=args.host, port=args.port)

            async def _serve() -> None:
                await gateway.start()
                print(f"job gateway listening on {gateway.host}:{gateway.port}")
                await gateway.serve_forever()

            try:
                asyncio.run(_serve())
            except KeyboardInterrupt:
                print("gateway stopped")
        return 0

    with JobService(args.root) as service:
        if args.jobs_command == "submit":
            try:
                params = _parse_job_params(args.param)
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            try:
                job, created = service.submit(
                    args.tenant,
                    args.kind,
                    params,
                    dedupe_key=args.dedupe_key,
                    max_attempts=args.max_attempts,
                )
            except JobShedError as exc:
                print(
                    f"submission shed: {exc} (retry after {exc.retry_after:g}s)",
                    file=sys.stderr,
                )
                return 1
            if args.json:
                print(json_mod.dumps({"job": job.describe(), "created": created}))
            else:
                verb = "created" if created else "deduplicated to existing"
                print(f"{verb} {job.job_id} ({job.state})")
            return 0
        if args.jobs_command == "status":
            try:
                print(json_mod.dumps(service.status(args.job_id), indent=2))
            except UnknownJobError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            return 0
        if args.jobs_command == "cancel":
            try:
                job = service.cancel(args.job_id)
            except (UnknownJobError, JobStateError) as exc:
                print(str(exc), file=sys.stderr)
                return 1
            print(f"cancelled {job.job_id}")
            return 0
        if args.jobs_command == "list":
            jobs = service.list_jobs(tenant=args.tenant, state=args.state)
            if args.json:
                print(json_mod.dumps([job.describe() for job in jobs], indent=2))
            else:
                rows = [
                    [
                        job.job_id,
                        job.tenant,
                        job.kind,
                        str(job.state),
                        f"{job.attempts}/{job.max_attempts}",
                        (job.failure or "")[:40],
                    ]
                    for job in jobs
                ]
                print(
                    format_table(
                        ["job", "tenant", "kind", "state", "attempts", "failure"],
                        rows,
                    )
                )
            return 0
        if args.jobs_command == "counters":
            for path, value in service.counters().items():
                print(f"{path:<46} {value}")
            return 0
    return 2  # pragma: no cover - argparse guards


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["bench"]:
        # Dispatched before the main parse: argparse's REMAINDER cannot
        # carry leading options through a subparser, and bench owns its
        # own argument set (see repro.bench.main / repro bench --help).
        from . import bench

        return bench.main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "machines":
        print(_cmd_machines())
    elif args.command == "exhibits":
        print(_cmd_exhibits(args.names))
    elif args.command == "stream":
        print(_cmd_stream(args.machine, args.pinning))
    elif args.command == "stencil1d":
        print(_cmd_stencil1d(args.machine, args.nodes, args.weak))
    elif args.command == "stencil2d":
        print(_cmd_stencil2d(args.machine, args.dtype, args.mode))
    elif args.command == "counters":
        if args.sample_interval is not None:
            print(
                _cmd_counters_sampled(
                    args.machine,
                    args.nodes,
                    args.steps,
                    args.sample_interval,
                    args.paths,
                    args.format,
                    args.output,
                )
            )
        else:
            print(exhibits.render_counter_table(args.machine))
    elif args.command == "trace":
        print(_cmd_trace(args.nodes, args.steps, args.export, args.metrics))
    elif args.command == "analyze":
        return _cmd_analyze(args)
    elif args.command == "bench":
        from . import bench

        return bench.main(args.bench_args)
    elif args.command == "run":
        return _cmd_run(args)
    elif args.command == "jobs":
        return _cmd_jobs(args)
    else:  # pragma: no cover - argparse guards
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
