"""Unit tests for the HPX-style performance-counter API."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import Runtime, async_, perfcounters
from repro.runtime import context as ctx


def test_threads_count_cumulative(rt):
    rt.run(lambda: [async_(lambda: None) for _ in range(5)] and None)
    rt.progress_all()
    # 5 children + the main task (+ nothing else).
    assert perfcounters.query(rt, "/threads{total}/count/cumulative") == 6.0


def test_per_locality_instance():
    with Runtime(n_localities=2, workers_per_locality=1) as rt:
        rt.run(lambda: None)
        loc0 = perfcounters.query(rt, "/threads{locality#0/total}/count/cumulative")
        loc1 = perfcounters.query(rt, "/threads{locality#1/total}/count/cumulative")
        assert loc0 >= 1.0
        assert loc1 == 0.0


def test_queue_length(rt):
    pool = rt.localities[0].pool
    pool.submit(lambda: None)
    pool.submit(lambda: None)
    assert perfcounters.query(rt, "/threads{total}/queue/length") == 2.0
    rt.progress_all()
    assert perfcounters.query(rt, "/threads{total}/queue/length") == 0.0


def test_stolen_counter(rt):
    pool = rt.localities[0].pool
    for _ in range(8):
        pool.submit(lambda: ctx.add_cost(1.0), worker=0)
    rt.progress_all()
    assert perfcounters.query(rt, "/threads{total}/count/stolen") > 0


def test_idle_rate_bounds(rt):
    def main():
        async_(lambda: ctx.add_cost(4.0))  # one long task -> 3 idle workers

    rt.run(main)
    rt.progress_all()
    idle = perfcounters.query(rt, "/threads{total}/idle-rate")
    assert 0.5 < idle < 1.0  # 3 of 4 workers idle most of the makespan


def test_idle_rate_counts_delayed_start_as_idle(rt):
    """A task deferred by ready_time leaves the worker idle, not busy --
    the counter reads attributed cost, not end times."""
    pool = rt.localities[0].pool
    pool.submit(lambda: ctx.add_cost(1.0), ready_time=9.0)
    rt.progress_all()
    # 1 busy second out of 4 workers x 10s makespan.
    idle = perfcounters.query(rt, "/threads{total}/idle-rate")
    assert idle == pytest.approx(1.0 - 1.0 / 40.0)


def test_time_average(rt):
    rt.run(lambda: [async_(lambda: ctx.add_cost(2.0)) for _ in range(4)] and None)
    rt.progress_all()
    avg = perfcounters.query(rt, "/threads{total}/time/average")
    assert avg > 0.0


def test_parcel_counters():
    with Runtime(machine="xeon-e5-2660v3", n_localities=2, workers_per_locality=1) as rt:
        rt.run(lambda: rt.async_at(1, abs, -3).get())
        assert perfcounters.query(rt, "/parcels{total}/count/sent") >= 1.0
        assert perfcounters.query(rt, "/parcels{total}/data/sent") > 0.0


def test_uptime_is_makespan(rt):
    rt.run(lambda: ctx.add_cost(1.5))
    assert perfcounters.query(rt, "/runtime/uptime") == pytest.approx(rt.makespan)


def test_malformed_paths_rejected(rt):
    for bad in (
        "threads/count",  # no leading slash
        "/threads{locality#x/total}/count/cumulative",
        "/threads{total}/count/bogus",
        "/parcels{locality#0/total}/count/sent",
        "/nonsense/count",
        "/runtime/downtime",
    ):
        with pytest.raises(RuntimeStateError):
            perfcounters.query(rt, bad)


def test_discover_lists_queryable_paths(rt):
    paths = perfcounters.discover(rt)
    assert "/runtime/uptime" in paths
    for path in paths:
        value = perfcounters.query(rt, path)
        assert isinstance(value, float)
