"""Fig 5: 2D stencil on HiSilicon Kunpeng 916 (Hi1616).

The paper's two signature results for this machine: up to 80 %
improvement from explicit vectorization, and sudden performance drops
when a NUMA domain is only partially saturated (the 32->40-core dip).
"""

import numpy as np
import pytest

from repro.exhibits import fig_2d_stencil, render_fig_2d
from repro.hardware import machine
from repro.perf import stencil2d_glups

MACHINE = "kunpeng916"


def test_fig5_exhibit(benchmark, save_exhibit):
    series = benchmark(fig_2d_stencil, MACHINE)
    assert len(series) == 8  # 4 variants + 4 peak lines
    save_exhibit("fig5_2d_kunpeng", render_fig_2d(MACHINE))


def test_fig5_numa_dips(benchmark):
    """The sawtooth: dips at 40 and 56 cores, recovery at 48 and 64."""
    m = machine(MACHINE)
    glups = benchmark(
        lambda: {c: stencil2d_glups(m, np.float32, "simd", c) for c in range(8, 65, 8)}
    )
    assert glups[40] < glups[32]
    assert glups[48] > glups[40]
    assert glups[56] < glups[48]
    assert glups[64] > glups[56]


def test_fig5_vectorization_gain_up_to_80_percent():
    m = machine(MACHINE)
    gains = [
        stencil2d_glups(m, np.float32, "simd", c)
        / stencil2d_glups(m, np.float32, "auto", c)
        - 1
        for c in (1, 8, 16, 32, 64)
    ]
    assert max(gains) >= 0.6  # "up to 80% improvements"
    assert max(gains) <= 0.85


def test_fig5_low_per_core_performance():
    """Single NEON pipe + weak memory path: the slowest per-core machine."""
    slowest = stencil2d_glups(machine(MACHINE), np.float32, "auto", 1)
    for other in ("xeon-e5-2660v3", "thunderx2", "a64fx"):
        assert slowest < stencil2d_glups(machine(other), np.float32, "auto", 1)
