"""``hwloc-ls``-style topology rendering.

The paper pins workers with ``hwloc-bind``; being able to *see* the tree
it binds against (sockets, NUMA domains, shared caches, cores, PUs) is
half the battle when explaining the NUMA results.  :func:`render_machine`
prints the same nested view ``hwloc-ls`` would, from our machine models.
"""

from __future__ import annotations

from .registry import MachineModel
from .topology import CpuSet

__all__ = ["render_machine", "render_pinning"]


def _fmt_bytes(n: int) -> str:
    for unit, size in (("GB", 1 << 30), ("MB", 1 << 20), ("KB", 1 << 10)):
        if n >= size and n % size == 0:
            return f"{n // size}{unit}"
    return f"{n}B"


def render_machine(model: MachineModel, show_pus: bool = True) -> str:
    """An hwloc-ls-like tree for one machine model."""
    spec = model.spec
    lines = [f"Machine: {spec.name} ({spec.peak_gflops:.0f} GFLOP/s peak)"]
    shared_levels = [lvl for lvl in model.caches.levels if lvl.shared_by_cores > 1]
    private_levels = [lvl for lvl in model.caches.levels if lvl.shared_by_cores == 1]
    for socket in model.topology.sockets:
        lines.append(f"  Package P#{socket.socket_id}")
        for domain in socket.domains:
            peak = model.memory.domain_model.bandwidth(domain.n_cores)
            lines.append(
                f"    NUMANode N#{domain.domain_id} "
                f"({domain.n_cores} cores, {peak:.0f} GB/s)"
            )
            for level in shared_levels:
                lines.append(
                    f"      {level.name} ({_fmt_bytes(level.size_bytes)}, "
                    f"shared by {level.shared_by_cores} cores, "
                    f"{level.line_bytes}B lines)"
                )
            for core in domain.cores:
                caches = " + ".join(
                    f"{lvl.name} {_fmt_bytes(lvl.size_bytes)}"
                    for lvl in private_levels
                )
                line = f"      Core C#{core.core_id}"
                if caches:
                    line += f" ({caches})"
                if show_pus:
                    pus = " ".join(f"PU#{pu.pu_id}" for pu in core.pus)
                    line += f"  {pus}"
                lines.append(line)
    return "\n".join(lines)


def render_pinning(model: MachineModel, cpuset: CpuSet) -> str:
    """Show which cores/domains a pinning selects (``hwloc-bind`` view)."""
    counts = model.topology.cores_per_domain_for(cpuset)
    lines = [
        f"{model.spec.name}: {len(cpuset)} worker(s) pinned "
        f"across {len(counts)} NUMA domain(s)"
    ]
    for domain in model.topology.domains:
        used = counts.get(domain.domain_id, 0)
        bar = "#" * used + "." * (domain.n_cores - used)
        lines.append(f"  N#{domain.domain_id} [{bar}] {used}/{domain.n_cores}")
    return "\n".join(lines)
