"""Crash-restart acceptance: SIGKILL storm, then audit the journal.

This is the executable form of the PR's durability claims: after a
storm of worker processes killed with SIGKILL at seeded-random points,
every accepted job must reach a terminal state *exactly once* (audited
over raw journal records), dedupe-key resubmission must return the
original job id, and every re-driven stencil job must produce a result
bit-identical to an uninterrupted reference run.  The nightly CI job
(``service-chaos``) runs the same harness with bigger parameters.
"""

import os
from pathlib import Path

import pytest

import repro
from repro.service import ServicePolicy
from repro.service.chaos import run_storm


@pytest.fixture(autouse=True)
def _src_on_subprocess_path(monkeypatch):
    """Chaos workers are fresh interpreters: they need ``src`` importable."""
    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    parts = [src] + ([existing] if existing else [])
    monkeypatch.setenv("PYTHONPATH", os.pathsep.join(parts))


def test_sigkill_storm_preserves_every_invariant(tmp_path):
    report = run_storm(
        str(tmp_path),
        tenants=2,
        jobs_per_tenant=1,
        nx=16,
        steps=10,
        seed=7,
        max_kills=2,
        kill_after=(0.3, 0.9),
        drain_timeout=120.0,
        policy=ServicePolicy(
            lease_seconds=5.0,
            epoch_steps=2,
            retry_base_seconds=0.05,
            retry_cap_seconds=0.2,
            sync_journal=True,  # the real durability configuration
        ),
    )
    assert report["violations"] == []
    # 2 tenants x (1 stencil + flaky + doomed) jobs.
    assert report["accepted"] == 6
    states = report["states"]
    # Stencil and flaky jobs finish; the doomed job exhausts its retry
    # budget and fails with a recorded cause (audited in run_storm).
    assert states.get("done", 0) == 4
    assert states.get("failed", 0) == 2
    # The journal only ever grows; replay stayed within it.
    assert report["journal_records"] >= report["accepted"]
