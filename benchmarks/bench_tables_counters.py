"""Tables III-VI: hardware counters for the 2D kernel.

Regenerates all four counter tables from the counter model (single core,
8192x16384 grid, 100 iterations -- the paper's measurement setup) and
checks each table's analytical punchline.
"""

import pytest

from repro.exhibits import counter_table, render_counter_table
from repro.hardware import (
    PAPI_L2_TCM,
    PAPI_TOT_INS,
    STALL_BACKEND,
    machine,
)
from repro.perf import CounterModel

TABLES = {
    "xeon-e5-2660v3": "table3_counters_xeon",
    "kunpeng916": "table4_counters_kunpeng",
    "a64fx": "table5_counters_a64fx",
    "thunderx2": "table6_counters_thunderx2",
}


@pytest.mark.parametrize("name", sorted(TABLES))
def test_counter_table_exhibits(benchmark, save_exhibit, name):
    headers, rows = benchmark(counter_table, name)
    assert len(rows) == 4  # Float / Vector Float / Double / Vector Double
    save_exhibit(TABLES[name], render_counter_table(name))


def test_table3_xeon_2x_instruction_gap(benchmark):
    """'a 2x difference in instruction count between scalar and vector'."""
    model = CounterModel(machine("xeon-e5-2660v3"))
    ratio = benchmark(
        lambda: model.predict("float32", "auto")[PAPI_TOT_INS]
        / model.predict("float32", "simd")[PAPI_TOT_INS]
    )
    assert ratio == pytest.approx(1.77, rel=0.05)  # 3.153e10 / 1.783e10
    # ... and the auto code has *fewer* cache misses (GCC's x86 tuning).
    assert (
        model.predict("float32", "auto")[PAPI_L2_TCM]
        < model.predict("float32", "simd")[PAPI_L2_TCM]
    )


def test_table4_kunpeng_cache_miss_decline():
    """'a 10-20% decline in cache misses by moving to explicitly
    vectorized code'."""
    model = CounterModel(machine("kunpeng916"))
    for dtype in ("float32", "float64"):
        auto = model.predict(dtype, "auto")[PAPI_L2_TCM]
        simd = model.predict(dtype, "simd")[PAPI_L2_TCM]
        assert 0.08 <= 1 - simd / auto <= 0.25


def test_table5_a64fx_stall_reduction():
    """'significant reductions in CPU stalls for vectorized codes'."""
    model = CounterModel(machine("a64fx"))
    for dtype in ("float32", "float64"):
        auto = model.predict(dtype, "auto")[STALL_BACKEND]
        simd = model.predict(dtype, "simd")[STALL_BACKEND]
        assert simd < auto


def test_cycle_model_exhibit(benchmark, save_exhibit):
    """The counter-to-performance bridge: counter-implied single-core
    rates vs the registry's calibrated rates (Tables V/VI machines)."""
    from repro.perf.cyclemodel import predicted_single_core_glups
    from repro.reporting import format_table

    def build():
        rows = []
        for name in ("a64fx", "thunderx2"):
            m = machine(name)
            for dtype in ("float32", "float64"):
                for mode in ("auto", "simd"):
                    implied = predicted_single_core_glups(m, dtype, mode)
                    calibrated = m.calibration.single_core_glups[(dtype, mode)]
                    rows.append(
                        [
                            m.spec.name,
                            f"{dtype}/{mode}",
                            f"{implied:.2f}",
                            f"{calibrated:.2f}",
                            f"{implied / calibrated - 1:+.0%}",
                        ]
                    )
        return rows

    rows = benchmark(build)
    save_exhibit(
        "cyclemodel_consistency",
        "Counter-implied vs calibrated single-core rates (GLUP/s)\n"
        + format_table(
            ["machine", "variant", "counters imply", "registry", "residual"], rows
        ),
    )
    assert len(rows) == 8


def test_table6_tx2_backend_stall_gap():
    """The TX2 float backend-stall ratio: 1.522e10 vs 6.437e9 (~2.4x)."""
    model = CounterModel(machine("thunderx2"))
    ratio = (
        model.predict("float32", "auto")[STALL_BACKEND]
        / model.predict("float32", "simd")[STALL_BACKEND]
    )
    assert ratio == pytest.approx(2.36, rel=0.05)
