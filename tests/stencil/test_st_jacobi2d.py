"""Unit and integration tests for the 2D Jacobi solver."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime import par
from repro.simd.isa import AVX2, NEON, sve
from repro.stencil import Jacobi2D, jacobi_dense_solution, jacobi_reference_step, max_error


def reference_solution(field, steps):
    out = np.array(field, dtype=np.float64)
    for _ in range(steps):
        out = jacobi_reference_step(out)
    return out


def hot_top(ny, nx):
    field = np.zeros((ny, nx))
    field[0, :] = 1.0
    return field


class TestAutoKernel:
    def test_matches_dense_reference(self):
        field = hot_top(10, 18)
        solver = Jacobi2D(10, 18, np.float64, mode="auto")
        solver.initialize(field)
        out = solver.run(30)
        assert max_error(out, reference_solution(field, 30)) < 1e-14

    def test_boundaries_never_change(self):
        field = np.random.default_rng(1).random((8, 12))
        solver = Jacobi2D(8, 12, np.float64, mode="auto")
        solver.initialize(field)
        out = solver.run(20)
        assert np.array_equal(out[0, :], field[0, :])
        assert np.array_equal(out[-1, :], field[-1, :])
        assert np.array_equal(out[:, 0], field[:, 0])
        assert np.array_equal(out[:, -1], field[:, -1])

    def test_default_initialization_is_hot_top(self):
        solver = Jacobi2D(6, 8, np.float64)
        solver.initialize()
        assert solver.solution()[0, :].tolist() == [1.0] * 8

    def test_converges_to_harmonic_solution(self):
        field = hot_top(10, 10)
        solver = Jacobi2D(10, 10, np.float64)
        solver.initialize(field)
        out = solver.run(2000)
        assert max_error(out, jacobi_dense_solution(field)) < 1e-10


class TestSimdKernel:
    @pytest.mark.parametrize("isa", [AVX2, NEON, sve(512)], ids=["avx2", "neon", "sve512"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64], ids=["f32", "f64"])
    def test_simd_matches_auto_exactly(self, isa, dtype):
        lanes = isa.lanes(dtype)
        nx = 2 + lanes * 6
        field = np.random.default_rng(2).random((9, nx))
        auto = Jacobi2D(9, nx, dtype, mode="auto")
        auto.initialize(field)
        simd = Jacobi2D(9, nx, dtype, mode="simd", isa=isa)
        simd.initialize(field)
        assert max_error(auto.run(25), simd.run(25)) == 0.0

    def test_simd_needs_isa(self):
        with pytest.raises(ValidationError):
            Jacobi2D(8, 10, mode="simd")

    def test_lanes_follow_isa_and_dtype(self):
        assert Jacobi2D(8, 34, np.float32, mode="simd", isa=AVX2).lanes == 8
        assert Jacobi2D(8, 34, np.float64, mode="simd", isa=sve(512)).lanes == 8


class TestDriver:
    def test_parallel_run_matches_sequential(self, rt):
        field = hot_top(16, 20)
        seq_solver = Jacobi2D(16, 20, np.float64)
        seq_solver.initialize(field)
        expected = seq_solver.run(15)

        par_solver = Jacobi2D(16, 20, np.float64)
        par_solver.initialize(field)
        out = rt.run(lambda: par_solver.run(15, par))
        assert max_error(out, expected) == 0.0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError):
            Jacobi2D(8, 10, mode="gpu")

    def test_initialize_shape_checked(self):
        solver = Jacobi2D(8, 10)
        with pytest.raises(ValidationError):
            solver.initialize(np.zeros((8, 11)))

    def test_negative_steps_rejected(self):
        solver = Jacobi2D(8, 10)
        solver.initialize()
        with pytest.raises(ValidationError):
            solver.run(-1)

    def test_lup_accounting(self):
        solver = Jacobi2D(10, 12)
        solver.initialize()
        solver.run(5)
        assert solver.lattice_site_updates == 8 * 10 * 5

    def test_grid_bytes(self):
        solver = Jacobi2D(10, 12, np.float32)
        assert solver.grid_bytes == 10 * 12 * 4

    def test_incremental_runs_compose(self):
        field = hot_top(8, 10)
        a = Jacobi2D(8, 10, np.float64)
        a.initialize(field)
        a.run(7)
        out = a.run(8)
        assert max_error(out, reference_solution(field, 15)) < 1e-14

    def test_float32_accumulates_like_float64_reference(self):
        """float32 runs deviate only by rounding, not by structure."""
        field = hot_top(12, 14)
        solver = Jacobi2D(12, 14, np.float32)
        solver.initialize(field)
        out = solver.run(50)
        assert max_error(out, reference_solution(field, 50)) < 1e-5


class TestFusedBlocks:
    """``fused=True`` (the default, scalar layout only) must be
    bit-identical to the per-row sweep: the block update uses the same
    operand order and charges the same per-row virtual cost."""

    def test_fused_matches_unfused_seq(self):
        field = hot_top(16, 20)
        fused = Jacobi2D(16, 20, np.float64)
        fused.initialize(field)
        unfused = Jacobi2D(16, 20, np.float64)
        unfused.initialize(field)
        out_fused = fused.run(15, fused=True)
        out_unfused = unfused.run(15, fused=False)
        assert max_error(out_fused, out_unfused) == 0.0

    def test_fused_matches_unfused_par_with_cost_model(self):
        from repro.runtime import Runtime

        field = hot_top(18, 22)

        def makespan_run(fused):
            with Runtime(n_localities=1, workers_per_locality=4) as rt:
                solver = Jacobi2D(18, 22, np.float64, cost_per_row=1e-6)
                solver.initialize(field)
                out = rt.run(lambda: solver.run(12, par, fused=fused))
                return out, rt.makespan

        out_fused, t_fused = makespan_run(True)
        out_unfused, t_unfused = makespan_run(False)
        assert max_error(out_fused, out_unfused) == 0.0
        # Same chunking, one HPX-thread per chunk, cost_per_row per row:
        # the virtual makespan may not move either.
        assert t_fused == t_unfused

    def test_simd_layout_always_runs_per_row(self):
        field = hot_top(12, 34)
        simd_solver = Jacobi2D(12, 34, np.float64, mode="simd", isa=AVX2)
        simd_solver.initialize(field)
        auto_solver = Jacobi2D(12, 34, np.float64)
        auto_solver.initialize(field)
        # fused=True is a no-op for the VNS layout (per-row halo shuffle).
        out_simd = simd_solver.run(10, fused=True)
        out_auto = auto_solver.run(10, fused=True)
        assert max_error(out_simd, out_auto) == 0.0
