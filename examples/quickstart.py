#!/usr/bin/env python3
"""Quickstart: a tour of the ParalleX runtime API.

Covers the pieces a new user needs in order: futures and ``async_``,
``dataflow`` continuation style, parallel algorithms with execution
policies, LCOs (channel, latch, barrier), and a taste of the
virtual-time model that makes the performance studies possible.

Run:  python examples/quickstart.py
"""

from repro.runtime import (
    Barrier,
    Channel,
    Latch,
    Runtime,
    async_,
    dataflow,
    for_each,
    par,
    reduce_,
    when_all,
)
from repro.runtime import context as ctx


def fib(n: int) -> int:
    """The classic recursive-futures fibonacci (HPX's hello-world)."""
    if n < 2:
        return n
    a = async_(fib, n - 1)  # spawn an HPX-thread, get a future
    b = async_(fib, n - 2)
    return a.get() + b.get()  # cooperative blocking: workers keep busy


def dataflow_pipeline() -> int:
    """Continuation style: nothing ever blocks, values flow."""
    raw = dataflow(lambda: list(range(10)))
    squared = dataflow(lambda xs: [x * x for x in xs], raw)
    total = dataflow(sum, squared)
    return total.get()


def parallel_algorithms() -> tuple[list[int], int]:
    doubled: list[int] = []
    for_each(par, range(20), lambda i: doubled.append(2 * i))
    total = reduce_(par, range(1, 101), 0, lambda a, b: a + b)
    return sorted(doubled), total


def lco_tour() -> str:
    # Channel: asynchronous FIFO between producer and consumer tasks.
    channel = Channel("pipe")
    async_(lambda: [channel.set(i) for i in range(3)])
    received = [channel.get_sync() for _ in range(3)]

    # Latch: N workers signal one waiter.
    latch = Latch(4)
    for _ in range(4):
        async_(latch.count_down)
    latch.wait()

    # Barrier: lockstep phases.
    barrier = Barrier(3)
    phases = []

    def worker(i):
        phases.append(("phase-1", i))
        barrier.arrive_and_wait()
        phases.append(("phase-2", i))

    when_all([async_(worker, i) for i in range(3)]).get()
    first_half = {p for p, _ in phases[:3]}
    return f"received={received}, barrier phases separated: {first_half == {'phase-1'}}"


def virtual_time_demo() -> str:
    """Attribute modelled compute costs; the pool's clock is virtual."""

    def work():
        ctx.add_cost(1.0)  # this task 'costs' one virtual second

    futures = [async_(work) for _ in range(8)]
    when_all(futures).get()
    return "8x1s of work on 4 workers -> virtual makespan 2s"


def main() -> None:
    # A runtime is one job: localities, thread pools, AGAS, parcelport.
    with Runtime(n_localities=1, workers_per_locality=4) as rt:
        print("fib(12)             =", rt.run(fib, 12))
        print("dataflow pipeline   =", rt.run(dataflow_pipeline))
        doubled, total = rt.run(parallel_algorithms)
        print("for_each doubled    =", doubled[:5], "...")
        print("reduce_ 1..100      =", total)
        print("LCO tour            =", rt.run(lco_tour))
        print(rt.run(virtual_time_demo), f"(measured: {rt.makespan:.1f}s)")


if __name__ == "__main__":
    main()
