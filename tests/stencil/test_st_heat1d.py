"""Unit and integration tests for the 1D heat solvers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.runtime import Runtime, par, seq
from repro.stencil import (
    DistributedHeat1D,
    Heat1DParams,
    Heat1DPartitioned,
    analytic_heat_profile,
    discrete_heat_decay_factor,
    heat1d_reference,
    l2_error,
)


PARAMS = Heat1DParams()


def test_params_validation():
    with pytest.raises(ValidationError):
        Heat1DParams(alpha=-1)
    with pytest.raises(ValidationError):
        Heat1DParams(dt=0)
    Heat1DParams(dt=1e-5).check_stability()
    with pytest.raises(ValidationError):
        Heat1DParams(dt=1.0).check_stability()


def test_reference_conserves_mass():
    """The periodic stencil conserves the field's sum exactly."""
    u0 = np.linspace(0, 1, 32)
    u1 = heat1d_reference(u0, 50, PARAMS)
    assert u1.sum() == pytest.approx(u0.sum(), rel=1e-12)


def test_reference_damps_fourier_mode_exactly():
    u0 = analytic_heat_profile(128, mode=3)
    u1 = heat1d_reference(u0, 200, PARAMS)
    factor = discrete_heat_decay_factor(128, 3, PARAMS, 200)
    assert np.max(np.abs(u1 - factor * u0)) < 1e-12


def test_reference_zero_steps_identity():
    u0 = np.random.default_rng(0).random(16)
    assert np.array_equal(heat1d_reference(u0, 0, PARAMS), u0)
    with pytest.raises(ValidationError):
        heat1d_reference(u0, -1, PARAMS)


# Partitioned (Listing 1) ------------------------------------------------------

class TestPartitioned:
    def test_matches_reference_seq(self):
        u0 = analytic_heat_profile(60)
        solver = Heat1DPartitioned(60, 6, PARAMS)
        solver.initialize(u0)
        out = solver.run(40, seq)
        assert l2_error(out, heat1d_reference(u0, 40, PARAMS)) < 1e-13

    def test_matches_reference_par(self, rt):
        u0 = analytic_heat_profile(64)
        solver = Heat1DPartitioned(64, 8, PARAMS)
        solver.initialize(u0)
        out = rt.run(lambda: solver.run(40, par))
        assert l2_error(out, heat1d_reference(u0, 40, PARAMS)) < 1e-13

    def test_single_partition(self):
        u0 = analytic_heat_profile(16)
        solver = Heat1DPartitioned(16, 1, PARAMS)
        solver.initialize(u0)
        out = solver.run(10)
        assert l2_error(out, heat1d_reference(u0, 10, PARAMS)) < 1e-13

    def test_incremental_runs_compose(self):
        u0 = analytic_heat_profile(32)
        solver = Heat1DPartitioned(32, 4, PARAMS)
        solver.initialize(u0)
        solver.run(10)
        out = solver.run(15)
        assert l2_error(out, heat1d_reference(u0, 25, PARAMS)) < 1e-13

    def test_validation(self):
        with pytest.raises(ValidationError):
            Heat1DPartitioned(10, 3, PARAMS)  # uneven split
        with pytest.raises(ValidationError):
            Heat1DPartitioned(10, 0, PARAMS)
        solver = Heat1DPartitioned(10, 2, PARAMS)
        with pytest.raises(ValidationError):
            solver.initialize(np.zeros(11))
        with pytest.raises(ValidationError):
            solver.run(-1)


# Distributed (Fig 3's application) ---------------------------------------------

class TestDistributed:
    def run_distributed(self, n_localities, parts_per_loc, nx=64, steps=25):
        u0 = analytic_heat_profile(nx)
        with Runtime(
            machine="xeon-e5-2660v3",
            n_localities=n_localities,
            workers_per_locality=2,
        ) as rt:
            solver = DistributedHeat1D(
                rt, nx, PARAMS, partitions_per_locality=parts_per_loc
            )
            solver.initialize(u0)
            out = rt.run(lambda: solver.run(steps))
            makespan = rt.makespan
        return out, heat1d_reference(u0, steps, PARAMS), makespan

    def test_two_localities_match_reference(self):
        out, ref, _ = self.run_distributed(2, 1)
        assert l2_error(out, ref) < 1e-13

    def test_four_localities_two_partitions_each(self):
        out, ref, _ = self.run_distributed(4, 2)
        assert l2_error(out, ref) < 1e-13

    def test_single_locality(self):
        out, ref, _ = self.run_distributed(1, 4)
        assert l2_error(out, ref) < 1e-13

    def test_network_time_appears_in_makespan(self):
        _, _, makespan = self.run_distributed(4, 1)
        assert makespan > 0.0

    def test_validation(self):
        with Runtime(n_localities=2, workers_per_locality=1) as rt:
            with pytest.raises(ValidationError):
                DistributedHeat1D(rt, 63, PARAMS)  # does not split over 2
            solver = DistributedHeat1D(rt, 64, PARAMS)
            with pytest.raises(ValidationError):
                solver.run(5)  # not initialised
            solver.initialize(analytic_heat_profile(64))
            with pytest.raises(ValidationError):
                solver.initialize(np.zeros(63))

    def test_zero_steps(self):
        u0 = analytic_heat_profile(32)
        with Runtime(n_localities=2, workers_per_locality=1) as rt:
            solver = DistributedHeat1D(rt, 32, PARAMS)
            solver.initialize(u0)
            out = rt.run(lambda: solver.run(0))
        assert np.allclose(out, u0)


class TestFusedBlocks:
    """``fused=True`` (the default) must be bit-identical to the
    per-partition path: same chunking, same virtual cost, same bits."""

    def test_fused_matches_unfused_seq(self):
        u0 = analytic_heat_profile(60)
        fused = Heat1DPartitioned(60, 6, PARAMS)
        fused.initialize(u0)
        unfused = Heat1DPartitioned(60, 6, PARAMS)
        unfused.initialize(u0)
        np.testing.assert_array_equal(
            fused.run(40, seq, fused=True), unfused.run(40, seq, fused=False)
        )

    def test_fused_matches_unfused_par(self, rt):
        u0 = analytic_heat_profile(64)
        fused = Heat1DPartitioned(64, 8, PARAMS)
        fused.initialize(u0)
        unfused = Heat1DPartitioned(64, 8, PARAMS)
        unfused.initialize(u0)
        out_fused = rt.run(lambda: fused.run(40, par, fused=True))
        out_unfused = rt.run(lambda: unfused.run(40, par, fused=False))
        np.testing.assert_array_equal(out_fused, out_unfused)
        assert l2_error(out_fused, heat1d_reference(u0, 40, PARAMS)) < 1e-13
