"""Tests for remote (AGAS-hosted) channels."""

import pytest

from repro.errors import ChannelClosedError
from repro.runtime import Runtime
from repro.runtime.lco import RemoteChannel


@pytest.fixture
def cluster():
    with Runtime(machine="xeon-e5-2660v3", n_localities=3, workers_per_locality=2) as rt:
        yield rt


def test_set_then_get_across_localities(cluster):
    channel = RemoteChannel.create(cluster, locality_id=1)

    def main():
        channel.set(42).get()
        return channel.get_sync()

    assert cluster.run(main) == 42


def test_fifo_order_preserved(cluster):
    channel = RemoteChannel.create(cluster, locality_id=2)

    def main():
        for i in range(5):
            channel.set(i).get()
        return [channel.get_sync() for _ in range(5)]

    assert cluster.run(main) == [0, 1, 2, 3, 4]


def test_get_before_set_blocks_cooperatively(cluster):
    channel = RemoteChannel.create(cluster, locality_id=1)

    def producer():
        channel.set("payload")

    def main():
        pending = channel.get()  # remote get; nothing sent yet
        cluster.async_at(2, _produce_on, channel.gid)
        return pending.get()

    assert cluster.run(main) == "payload"


def _produce_on(gid):
    from repro.runtime import context as ctx

    runtime = ctx.current().runtime
    runtime.invoke(gid, "ch_set", "payload")


def test_try_get(cluster):
    channel = RemoteChannel.create(cluster)

    def main():
        empty = channel.try_get()
        channel.set(7).get()
        full = channel.try_get()
        return empty, full

    empty, full = cluster.run(main)
    assert empty == (False, None)
    assert full == (True, 7)


def test_len_counts_buffered(cluster):
    channel = RemoteChannel.create(cluster, locality_id=1)

    def main():
        channel.set(1).get()
        channel.set(2).get()
        return len(channel)

    assert cluster.run(main) == 2


def test_close_fails_remote_waiters(cluster):
    channel = RemoteChannel.create(cluster, locality_id=1)

    def main():
        channel.close()
        return channel.get()

    future = cluster.run(main)
    with pytest.raises(ChannelClosedError):
        future.get()


def test_home_and_migration(cluster):
    channel = RemoteChannel.create(cluster, locality_id=0)
    assert channel.home == 0

    def main():
        channel.set("before").get()
        cluster.agas.migrate(channel.gid, 2)
        channel.set("after").get()
        return channel.get_sync(), channel.get_sync()

    assert cluster.run(main) == ("before", "after")
    assert channel.home == 2


def test_remote_channel_costs_network_time(cluster):
    channel = RemoteChannel.create(cluster, locality_id=2)
    before = cluster.makespan
    cluster.run(lambda: channel.set(1).get())
    assert cluster.makespan > before
