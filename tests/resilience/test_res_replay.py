"""HPX-style resiliency task APIs: async_replay and async_replicate."""

import pytest

from repro.errors import ReplayExhaustedError, ReplicateError, RuntimeStateError
from repro.resilience import async_replay, async_replicate


class Flaky:
    """Raises for the first ``fail_first`` calls, then returns ``value``."""

    def __init__(self, fail_first, value="ok"):
        self.fail_first = fail_first
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError(f"transient failure #{self.calls}")
        return self.value


# async_replay -----------------------------------------------------------------

def test_replay_needs_positive_n(rt):
    def main():
        with pytest.raises(RuntimeStateError):
            async_replay(0, lambda: 1)
        return True

    assert rt.run(main)


def test_replay_first_attempt_success_runs_once(rt):
    flaky = Flaky(fail_first=0)

    def main():
        return async_replay(3, flaky).get()

    assert rt.run(main) == "ok"
    assert flaky.calls == 1


def test_replay_retries_until_success(rt):
    flaky = Flaky(fail_first=2)

    def main():
        return async_replay(5, flaky).get()

    assert rt.run(main) == "ok"
    assert flaky.calls == 3


def test_replay_exhaustion_reraises_last_exception(rt):
    flaky = Flaky(fail_first=10)

    def main():
        return async_replay(3, flaky).get()

    with pytest.raises(RuntimeError, match="transient failure #3"):
        rt.run(main)
    assert flaky.calls == 3


def test_replay_validate_rejects_until_acceptable(rt):
    counter = {"n": 0}

    def body():
        counter["n"] += 1
        return counter["n"]

    def main():
        return async_replay(5, body, validate=lambda v: v >= 3).get()

    assert rt.run(main) == 3


def test_replay_validate_never_satisfied(rt):
    def main():
        return async_replay(3, lambda: -1, validate=lambda v: v > 0).get()

    with pytest.raises(ReplayExhaustedError):
        rt.run(main)


def test_replay_passes_arguments(rt):
    def main():
        return async_replay(2, lambda a, b: a + b, 1, b=2).get()

    assert rt.run(main) == 3


def test_replay_unwraps_future_returning_bodies(rt):
    from repro.runtime import async_

    attempts = {"n": 0}

    def remote_ish():
        attempts["n"] += 1
        if attempts["n"] < 2:
            return async_(lambda: (_ for _ in ()).throw(RuntimeError("remote")))
        return async_(lambda: "remote ok")

    def main():
        return async_replay(4, remote_ish).get()

    assert rt.run(main) == "remote ok"
    assert attempts["n"] == 2


# async_replicate --------------------------------------------------------------

def test_replicate_needs_positive_n(rt):
    def main():
        with pytest.raises(RuntimeStateError):
            async_replicate(0, lambda: 1)
        return True

    assert rt.run(main)


def test_replicate_launches_all_replicas(rt):
    calls = {"n": 0}

    def body():
        calls["n"] += 1
        return calls["n"]

    def main():
        return async_replicate(4, body).get()

    result = rt.run(main)
    assert calls["n"] == 4  # all replicas ran (no short-circuit)
    assert result in (1, 2, 3, 4)


def test_replicate_first_valid_wins(rt):
    def main():
        return async_replicate(
            5,
            lambda: 1,
            validate=lambda v: v == 1,
        ).get()

    assert rt.run(main) == 1


def test_replicate_all_raise_propagates(rt):
    def main():
        def bad():
            raise ValueError("every replica is broken")

        return async_replicate(3, bad).get()

    with pytest.raises(ValueError, match="every replica is broken"):
        rt.run(main)


def test_replicate_successes_but_none_valid(rt):
    def main():
        return async_replicate(3, lambda: 0, validate=lambda v: v > 10).get()

    with pytest.raises(ReplicateError):
        rt.run(main)


def test_replicate_tolerates_partial_failures(rt):
    state = {"n": 0}

    def sometimes():
        state["n"] += 1
        if state["n"] % 2 == 1:
            raise RuntimeError("odd replica dies")
        return state["n"]

    def main():
        return async_replicate(4, sometimes).get()

    assert rt.run(main) % 2 == 0  # a surviving (even) replica's value
