"""Runtime instrumentation hooks for the sanitizer layer.

The ParalleX model makes a strong promise: futures, LCOs and parcels are
the *only* legal ordering edges between HPX-threads.  The
:mod:`repro.analysis` sanitizers check that promise dynamically, and to
do so they need to observe every edge-creating operation.  This module
is the seam between the runtime and those tools: the runtime calls the
functions below at each synchronisation-relevant point, and they forward
to the installed :class:`Probe` (if any).

Design constraints:

* **Zero cost when disabled.**  Every call site guards with
  ``if instrument.probe is not None`` (via the module-level helpers,
  which do the same check), so an un-instrumented run pays one attribute
  load per event.
* **No upward imports.**  This module knows nothing about the analysis
  package; probes are duck-typed subclasses of :class:`Probe` installed
  with :func:`install` / removed with :func:`uninstall`.
* **Composable.**  Several probes (e.g. a race detector plus a deadlock
  detector) can be active at once; they are invoked in install order.

The event vocabulary (see :class:`Probe` for signatures):

=====================  ========================================================
event                  fired when
=====================  ========================================================
``task_created``       a new HPX-thread is queued (spawn edge parent -> child)
``task_started``       an HPX-thread begins executing on a worker
``task_finished``      an HPX-thread terminated (value or exception delivered)
``state_fulfilled``    a promise/future shared state received its value
``state_read``         a task consumed a ready future's value (join edge)
``state_linked``       a combinator derived one future from others
                       (``when_all``/``then``/``dataflow``/...)
``state_contribute``   a partial contribution joined an LCO's release clock
                       (latch count-down, barrier arrival, and-gate slot)
``token_put``          a clocked token entered a buffer (channel value,
                       semaphore permit)
``token_get``          a clocked token left a buffer
``wait_enter``         a task cooperatively blocked on a shared state
``wait_exit``          the blocked task resumed (or unwound)
``lco_labelled``       an LCO described itself for wait-graph rendering
``access``             an instrumented read/write of shared component state
``stalled``            the progress engine ran out of runnable work
``quiesced``           the job drained with no awaited condition pending
``forgiven``           the runtime abandoned all pending continuations by
                       design (checkpoint rollback)
=====================  ========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from .threads.hpx_thread import HpxThread

__all__ = ["Probe", "install", "uninstall", "active_probes"]


class Probe:
    """No-op base class for runtime observers (override what you need)."""

    # Thread lifecycle ------------------------------------------------------
    def task_created(self, parent: "HpxThread | None", task: "HpxThread") -> None:
        """``task`` was queued by ``parent`` (None = the main context)."""

    def task_started(self, task: "HpxThread") -> None:
        """``task`` began running on a worker."""

    def task_finished(self, task: "HpxThread") -> None:
        """``task`` terminated (its result promise is set)."""

    # Future / promise edges ------------------------------------------------
    def state_fulfilled(self, state: Any) -> None:
        """A shared state became ready (value or exception stored)."""

    def state_read(self, state: Any) -> None:
        """The current task consumed a ready shared state's value."""

    def state_linked(
        self, sources: Sequence[Any], target: Any, label: str, mode: str = "all"
    ) -> None:
        """``target`` state will be produced from ``sources``.

        ``mode`` is ``"all"`` (every source needed: ``when_all``,
        ``dataflow``, ``then``) or ``"any"`` (one suffices:
        ``when_any``).
        """

    def state_contribute(self, state: Any) -> None:
        """The current task contributed to ``state``'s eventual release
        without necessarily being its final fulfiller (barrier arrival,
        latch count-down, and-gate slot, ``when_all`` input)."""

    # Buffered hand-offs ----------------------------------------------------
    def token_put(self, obj: Any) -> None:
        """The current task deposited a value/permit into ``obj``'s buffer."""

    def token_get(self, obj: Any) -> None:
        """The current task withdrew a buffered value/permit from ``obj``."""

    # Blocking waits --------------------------------------------------------
    def wait_enter(self, state: Any, detail: str = "") -> None:
        """The current task is about to block on ``state``."""

    def wait_exit(self, state: Any) -> None:
        """The current task resumed from a block on ``state``."""

    # Labels / shared-state metadata ---------------------------------------
    def lco_labelled(self, state: Any, label: str) -> None:
        """Human-readable description of the LCO behind ``state``."""

    # Shared-data accesses --------------------------------------------------
    def access(self, owner: Any, field: str, kind: str) -> None:
        """An instrumented ``kind`` ('read'/'write') of ``owner.field``."""

    # Progress-engine verdicts ---------------------------------------------
    def stalled(self, context: Any = None) -> None:
        """No runnable work remains while a wait is unsatisfied.  A probe
        may raise a richer error here; returning defers to the engine's
        default :class:`~repro.errors.DeadlockError`."""

    def quiesced(self, context: Any = None) -> None:
        """The job drained normally; a probe may raise if it tracked
        work that can no longer complete."""

    def forgiven(self, context: Any = None) -> None:
        """The runtime deliberately abandoned every currently-pending
        continuation (checkpoint rollback discards in-flight chains);
        probes tracking lost continuations should stop expecting them."""


#: The active probe, or ``None`` (the fast path).  With several probes
#: installed this is a :class:`_Fanout`; call sites only ever check
#: ``is not None`` and invoke the event method.
probe: Probe | None = None

#: Mirror of ``probe is not None``, kept in sync by :func:`_refresh`.
#: Hot event sites read this one module-level boolean and fetch
#: :data:`probe` only when it is True, so a disabled run pays a single
#: attribute load and truthiness test per event -- no None comparison,
#: no argument construction.
enabled: bool = False

_installed: list[Probe] = []


class _Fanout(Probe):
    """Dispatch every event to each installed probe, in install order."""

    def __init__(self, probes: list[Probe]) -> None:
        self._probes = probes

    def __getattribute__(self, name: str) -> Any:
        if name.startswith("_") or name not in Probe.__dict__:
            return object.__getattribute__(self, name)
        probes = object.__getattribute__(self, "_probes")

        def fanout(*args: Any, **kwargs: Any) -> None:
            for p in probes:
                getattr(p, name)(*args, **kwargs)

        return fanout


def _refresh() -> None:
    global probe, enabled
    if not _installed:
        probe = None
    elif len(_installed) == 1:
        probe = _installed[0]
    else:
        probe = _Fanout(list(_installed))
    enabled = probe is not None


def install(p: Probe) -> None:
    """Activate ``p``; it will receive every runtime event."""
    if p in _installed:
        return
    _installed.append(p)
    _refresh()


def uninstall(p: Probe) -> None:
    """Deactivate ``p`` (no-op if it is not installed)."""
    if p in _installed:
        _installed.remove(p)
    _refresh()


def active_probes() -> list[Probe]:
    """The probes currently receiving events (install order)."""
    return list(_installed)


def call_each(fn: Callable[[Probe], None]) -> None:
    """Apply ``fn`` to every installed probe (engine-side convenience)."""
    for p in list(_installed):
        fn(p)
