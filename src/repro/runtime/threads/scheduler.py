"""Task schedulers: FIFO, static, and work-stealing.

HPX's default scheduler keeps one lock-free deque per worker and steals
when a worker runs dry; ``schedule(static)``-style executors bind chunks
to workers with no stealing.  The cooperative analogues here preserve
the *placement decisions* (which worker runs which task, and when a
steal happens), which is what matters for the virtual-time model; they
need no locks because execution is single-threaded.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ...errors import ConfigError, RuntimeStateError
from .hpx_thread import HpxThread, ThreadPriority

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "StaticScheduler",
    "WorkStealingScheduler",
    "make_scheduler",
]

#: Priorities in service order: HIGH tasks always run before NORMAL/LOW
#: on the same worker (HPX's priority-queue scheduler behaviour).
_PRIORITIES = (ThreadPriority.HIGH, ThreadPriority.NORMAL, ThreadPriority.LOW)


class _PriorityDeques:
    """A bundle of one deque per priority level."""

    __slots__ = ("_deques",)

    def __init__(self) -> None:
        self._deques = {priority: deque() for priority in _PRIORITIES}

    def push(self, task: HpxThread) -> None:
        self._deques[task.priority].append(task)

    def pop_front(self) -> Optional[HpxThread]:
        """Owner pop: highest priority first, FIFO within a level."""
        for priority in _PRIORITIES:
            queue = self._deques[priority]
            if queue:
                return queue.popleft()
        return None

    def pop_back(self) -> Optional[HpxThread]:
        """Thief pop: regular work only, oldest within a level.

        LOW is background work (virtual-time timers); stealing it would
        let a timer fire on an idle thief while regular tasks queued on
        *other* victims are still runnable -- a priority inversion.  It
        stays with its owner, which pops it only when it has nothing
        better (:meth:`pop_front`).
        """
        for priority in (ThreadPriority.HIGH, ThreadPriority.NORMAL):
            queue = self._deques[priority]
            if queue:
                return queue.pop()
        return None

    def drain(self) -> list[HpxThread]:
        """Remove and return every queued task (crash decommissioning)."""
        drained: list[HpxThread] = []
        for priority in _PRIORITIES:
            queue = self._deques[priority]
            drained.extend(queue)
            queue.clear()
        return drained

    def __len__(self) -> int:
        return sum(len(q) for q in self._deques.values())


class Scheduler:
    """Interface: queue tasks, hand them to workers."""

    name = "abstract"

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise RuntimeStateError("scheduler needs at least one worker")
        self.n_workers = n_workers

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        """Queue a task, optionally bound/hinted to a worker."""
        raise NotImplementedError

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        """Get a task for ``worker_id`` or None if it can find none."""
        raise NotImplementedError

    def drain(self) -> list[HpxThread]:
        """Remove and return every queued task (crash decommissioning)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def _check_worker(self, worker_id: Optional[int]) -> None:
        if worker_id is not None and not 0 <= worker_id < self.n_workers:
            raise RuntimeStateError(
                f"worker {worker_id} out of range [0, {self.n_workers})"
            )


class FifoScheduler(Scheduler):
    """One global priority-FIFO queue; worker hints are ignored."""

    name = "fifo"

    def __init__(self, n_workers: int) -> None:
        super().__init__(n_workers)
        self._queue = _PriorityDeques()

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        self._check_worker(worker_hint)
        self._queue.push(task)

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        self._check_worker(worker_id)
        return self._queue.pop_front()

    def drain(self) -> list[HpxThread]:
        return self._queue.drain()

    def __len__(self) -> int:
        return len(self._queue)


class StaticScheduler(Scheduler):
    """Per-worker FIFO queues, no stealing (OpenMP ``schedule(static)``).

    Unhinted tasks are distributed round-robin.  A worker that drains its
    queue idles even if others are loaded -- exactly the imbalance the
    work-stealing ablation benchmark measures.
    """

    name = "static"

    def __init__(self, n_workers: int) -> None:
        super().__init__(n_workers)
        self._queues = [_PriorityDeques() for _ in range(n_workers)]
        self._rr = 0

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        self._check_worker(worker_hint)
        if worker_hint is None:
            worker_hint = self._rr
            self._rr = (self._rr + 1) % self.n_workers
        task.worker_id = worker_hint
        self._queues[worker_hint].push(task)

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        self._check_worker(worker_id)
        return self._queues[worker_id].pop_front()

    def drain(self) -> list[HpxThread]:
        drained: list[HpxThread] = []
        for queue in self._queues:
            drained.extend(queue.drain())
        return drained

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)


class WorkStealingScheduler(Scheduler):
    """Per-worker deques with deterministic round-robin stealing.

    Owners pop FIFO from the front of their deque (HPX default for
    fairness); thieves steal from the back, which takes the oldest work a
    victim queued -- the classic contention-minimising split.
    """

    name = "work-stealing"

    def __init__(self, n_workers: int, steal_attempts: int | None = None) -> None:
        super().__init__(n_workers)
        self._queues = [_PriorityDeques() for _ in range(n_workers)]
        self._rr = 0
        self.steal_attempts = (
            n_workers - 1 if steal_attempts is None else min(steal_attempts, n_workers - 1)
        )
        self.steals = 0  # statistic: successful steals

    def push(self, task: HpxThread, worker_hint: Optional[int] = None) -> None:
        self._check_worker(worker_hint)
        if worker_hint is None:
            worker_hint = self._rr
            self._rr = (self._rr + 1) % self.n_workers
        self._queues[worker_hint].push(task)

    def acquire(self, worker_id: int) -> Optional[HpxThread]:
        self._check_worker(worker_id)
        task = self._queues[worker_id].pop_front()
        if task is not None:
            task.worker_id = worker_id
            return task
        # Steal round-robin from the next victims.
        for k in range(1, self.steal_attempts + 1):
            victim = (worker_id + k) % self.n_workers
            task = self._queues[victim].pop_back()
            if task is not None:
                task.worker_id = worker_id
                self.steals += 1
                return task
        return None

    def drain(self) -> list[HpxThread]:
        drained: list[HpxThread] = []
        for queue in self._queues:
            drained.extend(queue.drain())
        return drained

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues)


def make_scheduler(name: str, n_workers: int, steal_attempts: int | None = None) -> Scheduler:
    """Factory keyed by the ``threads.scheduler`` config value."""
    if name == "fifo":
        return FifoScheduler(n_workers)
    if name == "static":
        return StaticScheduler(n_workers)
    if name == "work-stealing":
        return WorkStealingScheduler(n_workers, steal_attempts)
    raise ConfigError(f"unknown scheduler {name!r}")
