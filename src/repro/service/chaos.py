"""Kill -9 chaos harness for the job service (nightly CI).

The harness is the executable form of the durability claims in
``docs/job-service.md``:

1. **Submit** a multi-tenant job storm (including deliberate dedupe-key
   resubmissions and fault-injecting ``faulty`` jobs) into a fresh
   service directory.
2. **Storm**: repeatedly start a worker process (``repro jobs work``),
   let it run for a seeded-random interval, and SIGKILL it -- mid-epoch,
   mid-journal-append, wherever the clock lands.
3. **Drain**: run one final worker to completion.
4. **Audit** the survivors *from the journal itself*: every accepted
   job reached a terminal state exactly once (counted over raw journal
   records, not in-memory state), dedupe resubmissions mapped to the
   original job ids, and every ``done`` job's result digest is
   bit-identical to an uninterrupted reference run of the same job.

Only one service process may own a service directory at a time (the
journal is single-writer), so the harness runs workers strictly
sequentially -- which is exactly the crash/restart pattern the service
must survive.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import time
from typing import Any, Optional

from .executor import JobRunner
from .jobs import Job, JobState, TERMINAL_STATES
from .journal import read_journal
from .service import JobService, ServicePolicy

__all__ = ["run_storm"]

#: Terminal state names, for auditing raw journal records.
_TERMINAL_NAMES = frozenset(state.value for state in TERMINAL_STATES)


def _expected_result(
    kind: str, params: dict[str, Any], scratch: str, policy: ServicePolicy
) -> Optional[dict[str, Any]]:
    """Uninterrupted reference run of one job (digest oracle)."""
    if kind != "stencil1d":
        return None
    runner = JobRunner(
        scratch, epoch_steps=policy.epoch_steps, keep_epochs=policy.keep_epochs
    )
    job = Job(
        job_id=f"ref-{len(os.listdir(scratch)) if os.path.isdir(scratch) else 0}",
        tenant="reference",
        kind=kind,
        params=params,
        dedupe_key=None,
        max_attempts=1,
        submitted_at=0.0,
        attempts=1,
    )
    result = runner.run(job)
    runner.cleanup(job.job_id)
    return result


def _submit_storm(
    root: str,
    scratch: str,
    *,
    tenants: int,
    jobs_per_tenant: int,
    nx: int,
    steps: int,
    policy: ServicePolicy,
) -> tuple[dict[str, str], dict[str, str], int]:
    """Fill the service; returns (expected digests, dedupe map, accepted)."""
    expected: dict[str, str] = {}
    dedupe_original: dict[str, str] = {}
    accepted = 0
    with JobService(root, policy=policy) as service:
        for t in range(tenants):
            tenant = f"tenant-{t}"
            for i in range(jobs_per_tenant):
                params = {
                    "nx": nx,
                    "steps": steps,
                    "localities": 1 + (i % 2),
                    "mode": 1 + (t % 3),
                    "distributed": i % 2 == 0,
                }
                key = f"{tenant}-job-{i}"
                job, created = service.submit(
                    tenant, "stencil1d", params, dedupe_key=key
                )
                assert created, "fresh dedupe keys must create jobs"
                accepted += 1
                dedupe_original[key] = job.job_id
                reference = _expected_result(
                    "stencil1d", params, scratch, policy
                )
                assert reference is not None
                expected[job.job_id] = reference["digest"]
            # One retryable fault and one budget-exhausting fault per
            # tenant: retries and failed-with-cause both get exercised.
            for name, fails in (("flaky", 1), ("doomed", policy.max_attempts + 2)):
                job, created = service.submit(
                    tenant,
                    "faulty",
                    {"fail_attempts": fails},
                    dedupe_key=f"{tenant}-{name}",
                )
                assert created
                accepted += 1
            # Resubmit an already-used key: must dedupe, not create.
            job, created = service.submit(
                tenant,
                "stencil1d",
                {"nx": nx, "steps": steps},
                dedupe_key=f"{tenant}-job-0",
            )
            assert not created, "dedupe-key resubmission must not create"
            assert job.job_id == dedupe_original[f"{tenant}-job-0"]
    return expected, dedupe_original, accepted


def _worker_argv(root: str, worker: str) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "jobs",
        "work",
        "--root",
        root,
        "--worker",
        worker,
        "--exit-when-idle",
        "--poll",
        "0.05",
    ]


def run_storm(
    root: str,
    *,
    tenants: int = 3,
    jobs_per_tenant: int = 3,
    nx: int = 32,
    steps: int = 30,
    seed: int = 0,
    max_kills: int = 4,
    kill_after: tuple[float, float] = (0.4, 1.5),
    drain_timeout: float = 300.0,
    policy: Optional[ServicePolicy] = None,
) -> dict[str, Any]:
    """Run the full chaos storm; returns an audit report.

    ``report["violations"]`` is empty iff every durability invariant
    held; CI fails on any entry.
    """
    policy = policy or ServicePolicy(
        lease_seconds=10.0,
        epoch_steps=5,
        retry_base_seconds=0.05,
        retry_cap_seconds=0.2,
    )
    rng = random.Random(seed)
    scratch = os.path.join(root, "reference-scratch")
    os.makedirs(scratch, exist_ok=True)
    expected, dedupe_original, accepted = _submit_storm(
        os.path.join(root, "svc"),
        scratch,
        tenants=tenants,
        jobs_per_tenant=jobs_per_tenant,
        nx=nx,
        steps=steps,
        policy=policy,
    )
    svc_root = os.path.join(root, "svc")

    kills = 0
    for k in range(max_kills):
        proc = subprocess.Popen(_worker_argv(svc_root, f"chaos-{k}"))
        delay = rng.uniform(*kill_after)
        time.sleep(delay)  # repro-lint: disable=PX101
        if proc.poll() is None:
            proc.kill()  # SIGKILL: no cleanup, no journal flush courtesy
            proc.wait()
            kills += 1
        elif proc.returncode != 0:
            raise RuntimeError(
                f"chaos worker {k} exited {proc.returncode} before the kill"
            )

    # Final drain: one worker allowed to finish everything.
    proc = subprocess.Popen(_worker_argv(svc_root, "finisher"))
    try:
        drained_rc = proc.wait(timeout=drain_timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise RuntimeError(f"final drain did not finish within {drain_timeout}s")
    if drained_rc != 0:
        raise RuntimeError(f"final drain worker exited {drained_rc}")

    return _audit(
        svc_root,
        policy,
        expected=expected,
        dedupe_original=dedupe_original,
        accepted=accepted,
        kills=kills,
    )


def _audit(
    svc_root: str,
    policy: ServicePolicy,
    *,
    expected: dict[str, str],
    dedupe_original: dict[str, str],
    accepted: int,
    kills: int,
) -> dict[str, Any]:
    violations: list[str] = []

    # Exactly-once terminal transitions, counted over RAW journal
    # records -- the in-memory store would hide a double-terminate
    # because replay rejects it, so audit the bytes.
    records, torn = read_journal(os.path.join(svc_root, "jobs.journal"))
    terminal_counts: dict[str, int] = {}
    for record in records:
        if record.get("op") == "transition" and record.get("to") in _TERMINAL_NAMES:
            job_id = record["job_id"]
            terminal_counts[job_id] = terminal_counts.get(job_id, 0) + 1
    for job_id, count in sorted(terminal_counts.items()):
        if count > 1:
            violations.append(
                f"job {job_id} has {count} terminal transitions in the journal"
            )

    with JobService(svc_root, policy=policy) as service:
        jobs = service.store.jobs()
        if len(jobs) != accepted:
            violations.append(
                f"store holds {len(jobs)} jobs, {accepted} were accepted"
            )
        states: dict[str, int] = {}
        for job in jobs:
            states[job.state.value] = states.get(job.state.value, 0) + 1
            if not job.terminal:
                violations.append(
                    f"job {job.job_id} ({job.tenant}) is non-terminal: {job.state}"
                )
                continue
            if terminal_counts.get(job.job_id, 0) != 1:
                violations.append(
                    f"job {job.job_id} terminal in store but journalled "
                    f"{terminal_counts.get(job.job_id, 0)} terminal transitions"
                )
            if job.state is JobState.DONE and job.job_id in expected:
                digest = (job.result or {}).get("digest")
                if digest != expected[job.job_id]:
                    violations.append(
                        f"job {job.job_id} digest {digest!r} != uninterrupted "
                        f"reference {expected[job.job_id]!r}"
                    )
            if job.state is JobState.FAILED and not job.failure:
                violations.append(f"job {job.job_id} failed without a cause")
        # Dedupe keys still resolve to their original jobs after replay.
        for key, job_id in sorted(dedupe_original.items()):
            tenant = key.split("-job-")[0].split("-flaky")[0].split("-doomed")[0]
            job, created = service.store.submit(
                tenant, "stencil1d", {}, dedupe_key=key
            )
            if created or job.job_id != job_id:
                violations.append(
                    f"dedupe key {key!r} resolved to {job.job_id} "
                    f"(created={created}), expected {job_id}"
                )
        counters = service.counters()

    return {
        "accepted": accepted,
        "kills": kills,
        "torn_tail_seen": torn,
        "journal_records": len(records),
        "states": dict(sorted(states.items())),
        "violations": violations,
        "counters": counters,
    }
