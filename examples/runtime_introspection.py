#!/usr/bin/env python3
"""Runtime introspection: performance counters, tracing, topology views.

The paper leans on three kinds of introspection -- ``hwloc`` for
topology/pinning, PAPI/perf for hardware counters, and HPX's own
counters for runtime behaviour.  This example exercises all three
reproductions on a distributed run:

1. render the machine tree and the worker pinning (``hwloc-ls`` view),
2. run the distributed heat solver under the tracer and show the
   virtual-time Gantt chart (latency hiding, visibly),
3. read the HPX-style performance counters for the run,
4. export the timeline as Chrome trace-event JSON (open it in
   https://ui.perfetto.dev) and print latency-histogram summaries,
5. re-run while *sampling* counters every virtual second
   (``--hpx:print-counter-interval`` analogue).

Run:  python examples/runtime_introspection.py
"""

from repro.hardware import machine
from repro.hardware.topology_render import render_machine, render_pinning
from repro.observability import latency_histograms, sample_counters
from repro.runtime import Runtime, perfcounters
from repro.runtime.trace import Tracer
from repro.stencil import DistributedHeat1D, Heat1DParams, analytic_heat_profile

MACHINE = "a64fx"
NODES, WORKERS, STEPS = 2, 4, 8


def main() -> None:
    model = machine(MACHINE)
    print("=== 1. Topology (hwloc-ls view, first CMG only) ===")
    print("\n".join(render_machine(model, show_pus=False).splitlines()[:17]))
    print("   ...")
    print()
    print(render_pinning(model, model.topology.pin_compact(WORKERS * NODES)))

    print("\n=== 2. Traced distributed run (virtual-time Gantt) ===")
    tracer = Tracer()
    with Runtime(machine=MACHINE, n_localities=NODES, workers_per_locality=WORKERS) as rt:
        solver = DistributedHeat1D(
            rt, 128, Heat1DParams(), partitions_per_locality=WORKERS,
            cost_per_step=1.0,
        )
        solver.initialize(analytic_heat_profile(128))
        with tracer.attach(rt):
            rt.run(lambda: solver.run(STEPS))

        print(tracer.render_gantt(min_duration=0.5, exclude="hpx_main"))
        print(
            f"{len(tracer.records)} tasks traced; total queue delay "
            f"{tracer.total_queue_delay():.3f}s of virtual time"
        )

        print("\n=== 3. Performance counters (HPX counter paths) ===")
        for path in (
            "/threads{total}/count/cumulative",
            "/threads{locality#0/total}/count/cumulative",
            "/threads{locality#0/worker#0}/time/busy",
            "/threads{total}/count/stolen",
            "/threads{total}/idle-rate",
            "/parcels{total}/count/sent",
            "/parcels{total}/data/sent",
            "/parcels{total}/time/average-latency",
            "/runtime/uptime",
        ):
            print(f"  {path:<48} = {perfcounters.query(rt, path):,.6f}")

    print("\n=== 4. Perfetto export + latency histograms ===")
    out = "runtime_introspection.trace.json"
    tracer.export_chrome_trace(out)
    print(f"wrote {out} -- open it at https://ui.perfetto.dev")
    for name, histogram in latency_histograms(tracer).items():
        summary = histogram.summary()
        print(
            f"  {name:<16} n={summary['count']:<4} mean={summary['mean']:.4f}s "
            f"p50={summary['p50']:.4f}s p95={summary['p95']:.4f}s "
            f"p99={summary['p99']:.4f}s"
        )

    print("\n=== 5. Counter sampling every 1.0 virtual seconds ===")
    with Runtime(machine=MACHINE, n_localities=NODES, workers_per_locality=WORKERS) as rt:
        solver = DistributedHeat1D(
            rt, 128, Heat1DParams(), partitions_per_locality=WORKERS,
            cost_per_step=1.0,
        )
        solver.initialize(analytic_heat_profile(128))
        series = sample_counters(
            rt,
            lambda: solver.run(STEPS),
            paths=[
                "/threads{total}/count/cumulative",
                "/threads{total}/idle-rate",
                "/parcels{total}/count/sent",
            ],
            interval=1.0,
        )
    print(series.to_csv().rstrip())


if __name__ == "__main__":
    main()
