"""Memory bandwidth model: per-NUMA-domain saturation curves.

Two regimes matter in the paper:

* **Aggregate** (STREAM, Fig 2): each NUMA domain delivers
  ``min(n_d * per_core, domain_peak)`` and the node total is the sum over
  domains.  This produces the classic rising-then-flat STREAM curve.

* **Lockstep** (the 2D stencil, Figs 4-8): all workers synchronise at every
  time step, so the *slowest* NUMA domain is the critical path.  When the
  grid's pages end up spread evenly over the active domains, a domain
  populated with only a few cores cannot pull its share of data at full
  speed and drags the whole step down -- exactly the paper's explanation of
  the Kunpeng 916 dips at 40 and 64 cores and the ThunderX2 "half-saturated
  to fully-saturated" jump.

Both regimes are parameterised by one :class:`DomainBandwidthModel` per
machine, calibrated from Fig 2 read-offs in
:mod:`repro.hardware.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from .topology import Machine

__all__ = ["DomainBandwidthModel", "MemorySystem"]


@dataclass(frozen=True)
class DomainBandwidthModel:
    """Saturation model for a single NUMA domain.

    ``bandwidth(n) = min(n * per_core_gbs, peak_gbs)`` -- linear until the
    memory controllers saturate, then flat.  ``efficiency`` scales the
    whole curve (e.g. STREAM achieving ~85 % of the theoretical channel
    peak).
    """

    peak_gbs: float
    per_core_gbs: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_gbs <= 0 or self.per_core_gbs <= 0:
            raise TopologyError("bandwidths must be positive")
        if not 0 < self.efficiency <= 1.0:
            raise TopologyError("efficiency must be in (0, 1]")

    def bandwidth(self, n_cores: int) -> float:
        """Achievable GB/s with ``n_cores`` active in this domain."""
        if n_cores < 0:
            raise TopologyError("core count must be non-negative")
        if n_cores == 0:
            return 0.0
        return self.efficiency * min(n_cores * self.per_core_gbs, self.peak_gbs)

    @property
    def saturation_cores(self) -> int:
        """Smallest core count that reaches the domain's peak."""
        return max(1, -(-int(self.peak_gbs / self.per_core_gbs) // 1))


class MemorySystem:
    """Node-level memory model combining topology and domain curves."""

    def __init__(self, machine: Machine, domain_model: DomainBandwidthModel) -> None:
        self.machine = machine
        self.domain_model = domain_model

    def _domain_counts(self, n_cores: int, pinning: str) -> dict[int, int]:
        if pinning == "compact":
            cpuset = self.machine.pin_compact(n_cores)
        elif pinning == "scatter":
            cpuset = self.machine.pin_scatter(n_cores)
        else:
            raise TopologyError(f"unknown pinning policy {pinning!r}")
        return self.machine.cores_per_domain_for(cpuset)

    def aggregate_bandwidth(self, n_cores: int, pinning: str = "compact") -> float:
        """STREAM-style total GB/s: sum of per-domain achievable bandwidth."""
        counts = self._domain_counts(n_cores, pinning)
        return sum(self.domain_model.bandwidth(n) for n in counts.values())

    def lockstep_bandwidth(self, n_cores: int, pinning: str = "compact") -> float:
        """Effective GB/s under per-step synchronisation.

        The grid's pages are spread evenly over the *active* domains, so a
        step finishes when the slowest domain has moved its ``1/D`` share:
        ``BW_eff = D * min_d bandwidth(n_d)``.  With every active domain
        fully populated this equals the aggregate bandwidth; with a
        partially-populated domain it dips below it.
        """
        counts = self._domain_counts(n_cores, pinning)
        if not counts:
            return 0.0
        slowest = min(self.domain_model.bandwidth(n) for n in counts.values())
        return len(counts) * slowest

    def first_touch_bandwidth(self, n_cores: int, pinning: str = "compact") -> float:
        """Effective GB/s when data is first-touch local to each worker.

        Work and data per domain are both proportional to the domain's
        worker count, so domains finish together and the node delivers the
        plain aggregate.  This is the regime the NUMA-aware 1D solver
        reaches via HPX block allocators.
        """
        return self.aggregate_bandwidth(n_cores, pinning)

    def per_core_bandwidth(self, n_cores: int, pinning: str = "compact") -> float:
        """Bandwidth available to each of ``n_cores`` workers (lockstep)."""
        if n_cores <= 0:
            raise TopologyError("core count must be positive")
        return self.lockstep_bandwidth(n_cores, pinning) / n_cores
