"""Actions: named, remotely-invokable functions, plus the async API.

``@action`` registers a module-level function under a stable name so
parcels can reference it textually (the HPX action registry).  The
local-async trio mirrors HPX:

* :func:`async_` -- run on the current pool, get a future;
* :func:`apply`  -- fire-and-forget;
* :func:`sync`   -- run asynchronously but wait for the result.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import RuntimeStateError
from . import context as ctx
from .futures import Future

__all__ = ["action", "get_action", "async_", "apply", "sync", "async_after", "sleep_for"]

_REGISTRY: dict[str, Callable[..., Any]] = {}


def action(fn: Callable[..., Any] | None = None, *, name: str | None = None):
    """Register ``fn`` as a named action (decorator).

    ``@action`` uses the function's qualified name; ``@action(name=...)``
    overrides it.  Re-registering a different function under the same
    name is an error (actions must be stable across localities).
    """

    def register(func: Callable[..., Any]) -> Callable[..., Any]:
        key = name or f"{func.__module__}.{func.__qualname__}"
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not func:
            raise RuntimeStateError(f"action name {key!r} already registered")
        _REGISTRY[key] = func
        func.action_name = key  # type: ignore[attr-defined]
        return func

    if fn is not None:
        return register(fn)
    return register


def get_action(name: str) -> Callable[..., Any]:
    """Resolve a registered action by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RuntimeStateError(f"unknown action {name!r}") from None


def _current_pool():
    frame = ctx.current()
    if frame.pool is None:
        raise RuntimeStateError("no thread pool in the current context")
    return frame.pool


def async_(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
    """Spawn ``fn(*args, **kwargs)`` as an HPX-thread; returns its future."""
    return _current_pool().submit(fn, *args, kwargs=kwargs or None)


def apply(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
    """Fire-and-forget spawn (HPX ``hpx::post``/``apply``)."""
    _current_pool().submit(fn, *args, kwargs=kwargs or None)


def sync(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
    """Spawn and wait: ``async_(fn, ...).get()``."""
    return async_(fn, *args, **kwargs).get()


def async_after(delay: float, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
    """Spawn ``fn`` no earlier than ``delay`` virtual seconds from now.

    The cooperative analogue of HPX's timed execution
    (``hpx::async(hpx::launch::async, deadline, f)``): the task's ready
    time is pushed into the virtual future, so workers fill the gap with
    other work.
    """
    if delay < 0:
        raise RuntimeStateError(f"delay must be non-negative, got {delay!r}")
    pool = _current_pool()
    return pool.submit(
        fn,
        *args,
        kwargs=kwargs or None,
        ready_time=pool.now + delay,
        description=f"timed:{getattr(fn, '__name__', 'fn')}",
    )


def sleep_for(seconds: float) -> None:
    """Advance the calling task's virtual clock (``this_thread::sleep_for``).

    In virtual time, sleeping and computing are both occupancy of the
    worker; the distinction the paper's timing cares about is *when the
    task finishes*, which both advance identically.
    """
    from . import context as ctx

    if seconds < 0:
        raise RuntimeStateError(f"sleep must be non-negative, got {seconds!r}")
    ctx.add_cost(seconds)
