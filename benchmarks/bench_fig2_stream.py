"""Fig 2: STREAM COPY memory bandwidth vs core count.

Two parts: (a) regenerate the paper's four curves from the calibrated
memory models; (b) run a *real* STREAM COPY on the host as the honesty
check that the same harness measures actual silicon.
"""

import pytest

from repro.exhibits import fig2_stream, render_fig2
from repro.hardware import machine
from repro.perf.stream import stream_host, stream_model


def test_fig2_exhibit(benchmark, save_exhibit):
    series = benchmark(fig2_stream)
    assert len(series) == 4
    # Paper shape: every curve is monotone non-decreasing and A64FX tops out.
    finals = {s.name: s.ys()[-1] for s in series}
    assert finals["Fujitsu (FX1000) A64FX"] == max(finals.values())
    save_exhibit("fig2_stream", render_fig2())


@pytest.mark.parametrize(
    "name,expected_full_node",
    [
        ("xeon-e5-2660v3", 118.0),
        ("kunpeng916", 102.4),
        ("thunderx2", 236.0),
        ("a64fx", 660.0),
    ],
)
def test_fig2_full_node_levels(benchmark, name, expected_full_node):
    m = machine(name)
    result = benchmark(stream_model, m, m.spec.cores_per_node)
    assert result.bandwidth_gbs == pytest.approx(expected_full_node)


def test_fig2_host_stream_copy(benchmark, save_exhibit):
    """Real single-threaded STREAM COPY on this host (NumPy kernel)."""
    result = benchmark.pedantic(
        stream_host,
        kwargs={"array_elements": 2_000_000, "repeats": 3},
        rounds=3,
        iterations=1,
    )
    assert result.bandwidth_gbs > 0.1
    save_exhibit(
        "fig2_stream_host",
        f"Host STREAM COPY (2M doubles, best of 3): {result.bandwidth_gbs:.2f} GB/s",
    )
