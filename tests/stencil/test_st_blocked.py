"""Tests for the explicit cache-blocked 2D sweep.

Numerics: identical to the plain sweep (Jacobi reads only the previous
level).  Traffic: derived with the cache simulator -- blocking restores
the 3-transfers figure when full rows overflow the cache.
"""

import numpy as np
import pytest

from repro.errors import TopologyError, ValidationError
from repro.hardware.cachesim import CacheSim, jacobi_blocked_traffic, jacobi_row_traffic
from repro.stencil import Jacobi2D, max_error


def hot_top(ny, nx):
    field = np.zeros((ny, nx))
    field[0, :] = 1.0
    return field


class TestBlockedKernelNumerics:
    @pytest.mark.parametrize("tile_nx", [2, 3, 7, 16, 100])
    def test_identical_to_plain_sweep(self, tile_nx):
        field = np.random.default_rng(11).random((12, 20))
        plain = Jacobi2D(12, 20, np.float64)
        plain.initialize(field)
        blocked = Jacobi2D(12, 20, np.float64)
        blocked.initialize(field)
        assert max_error(plain.run(15), blocked.run_blocked(15, tile_nx)) == 0.0

    def test_mixing_plain_and_blocked_steps(self):
        field = hot_top(10, 14)
        solver = Jacobi2D(10, 14, np.float64)
        solver.initialize(field)
        solver.run(5)
        solver.run_blocked(5, 4)
        reference = Jacobi2D(10, 14, np.float64)
        reference.initialize(field)
        assert max_error(solver.solution(), reference.run(10)) == 0.0

    def test_validation(self):
        solver = Jacobi2D(8, 10, np.float64)
        solver.initialize()
        with pytest.raises(ValidationError):
            solver.run_blocked(-1, 4)
        with pytest.raises(ValidationError):
            solver.run_blocked(1, 1)
        from repro.simd.isa import NEON

        simd_solver = Jacobi2D(8, 18, np.float32, mode="simd", isa=NEON)
        simd_solver.initialize()
        with pytest.raises(ValidationError):
            simd_solver.run_blocked(1, 4)


class TestBlockedTraffic:
    def test_blocking_recovers_three_transfers_for_huge_rows(self):
        """Rows of 4096 doubles overflow a 32 KiB cache: the row sweep
        pays 5 transfers/LUP, the blocked sweep only ~3."""
        row_sweep = CacheSim(32 * 1024, 64, 8)
        unblocked = jacobi_row_traffic(row_sweep, ny=12, nx=4096, sweeps=2)
        tiled = CacheSim(32 * 1024, 64, 8)
        blocked = jacobi_blocked_traffic(tiled, ny=12, nx=4096, tile_nx=256, sweeps=2)
        assert unblocked == pytest.approx(40.0, rel=0.10)
        assert blocked == pytest.approx(24.0, rel=0.15)

    def test_blocking_is_neutral_when_rows_already_fit(self):
        """No benefit (and no harm) when the row sweep already reuses."""
        plain = CacheSim(32 * 1024, 64, 8)
        row = jacobi_row_traffic(plain, ny=16, nx=512, sweeps=2)
        tiled = CacheSim(32 * 1024, 64, 8)
        blocked = jacobi_blocked_traffic(tiled, ny=16, nx=512, tile_nx=128, sweeps=2)
        assert blocked == pytest.approx(row, rel=0.15)

    def test_too_narrow_tiles_waste_halo_lines(self):
        """Tiny tiles refetch the tile-edge lines every pass: traffic
        rises above the well-tiled figure."""
        good = CacheSim(32 * 1024, 64, 8)
        wide = jacobi_blocked_traffic(good, ny=12, nx=2048, tile_nx=256, sweeps=2)
        bad = CacheSim(32 * 1024, 64, 8)
        narrow = jacobi_blocked_traffic(bad, ny=12, nx=2048, tile_nx=8, sweeps=2)
        assert narrow > wide * 1.2

    def test_validation(self):
        cache = CacheSim(32 * 1024, 64, 8)
        with pytest.raises(TopologyError):
            jacobi_blocked_traffic(cache, 2, 64, 16)
        with pytest.raises(TopologyError):
            jacobi_blocked_traffic(cache, 8, 64, 1)
        with pytest.raises(TopologyError):
            jacobi_blocked_traffic(cache, 8, 64, 16, sweeps=0)
