"""Append-only, fsync'd, checksummed job journal.

The journal is the durability substrate of the job store: every state
change is one framed record appended and fsync'd *before* the change
takes effect in memory, so the on-disk record stream is always at least
as new as anything an observer was told.  Replaying the stream from the
top therefore reconstructs the exact visible store state at the moment
of a crash.

Record framing (one line per record, text, self-delimiting)::

    J1 <sha256-hex-16> <compact-json>\\n

``J1`` is the format tag (bump on layout changes), the checksum covers
the JSON payload bytes exactly, and the trailing newline doubles as the
commit marker.  The frame makes replay *torn-tail tolerant*: a process
killed mid-append leaves a final line that is missing its newline
commit marker -- :func:`read_journal` drops exactly that record and
reports it, because its effects were by construction never
acknowledged to anyone.  Any damage that cannot be explained by
truncation (a broken record mid-file, or a newline-terminated final
record whose checksum does not match) is real corruption and raises
:class:`~repro.errors.JournalCorruptError` instead of being guessed
around.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterator

from ..errors import JournalCorruptError

__all__ = ["JOURNAL_FORMAT", "Journal", "read_journal"]

#: Format tag written at the head of every record line.
JOURNAL_FORMAT = "J1"

#: Hex digest characters kept per record (64-bit prefix: framing, not crypto).
_CHECKSUM_LEN = 16


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:_CHECKSUM_LEN]


def _encode(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"%s %s %s\n" % (
        JOURNAL_FORMAT.encode("ascii"),
        _checksum(payload).encode("ascii"),
        payload,
    )


def _decode(line: bytes, index: int, final: bool) -> dict[str, Any] | None:
    """One framed line -> record dict.

    Returns None for a damaged *final* line (torn tail); raises
    :class:`JournalCorruptError` for damage anywhere else.
    """

    # Only damage explainable as truncation is tolerated: a crash cuts
    # the byte stream, so a torn final record can never carry the "\n"
    # commit marker (compact-JSON payloads contain no raw newlines).  A
    # damaged line that *does* end with "\n" -- even the last one -- is
    # corruption, not a torn tail.
    torn_candidate = final and not line.endswith(b"\n")

    def damaged(reason: str) -> dict[str, Any] | None:
        if torn_candidate:
            return None
        raise JournalCorruptError(
            f"journal record {index} is corrupt ({reason}); only a final "
            f"record missing its newline commit marker may be dropped as a "
            f"torn tail"
        )

    if not line.endswith(b"\n"):
        return damaged("no newline commit marker")
    parts = line[:-1].split(b" ", 2)
    if len(parts) != 3 or parts[0] != JOURNAL_FORMAT.encode("ascii"):
        return damaged("bad frame header")
    tag, checksum, payload = parts
    if checksum.decode("ascii", errors="replace") != _checksum(payload):
        return damaged("checksum mismatch")
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return damaged(f"unreadable payload: {exc}")
    if not isinstance(record, dict):
        return damaged("payload is not an object")
    return record


def read_journal(path: str | os.PathLike[str]) -> tuple[list[dict[str, Any]], bool]:
    """Replay ``path``: ``(records, torn_tail_dropped)``.

    A missing file reads as an empty journal (fresh store).
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        return [], False
    if not blob:
        return [], False
    lines = blob.splitlines(keepends=True)
    records: list[dict[str, Any]] = []
    torn = False
    last = len(lines) - 1
    for index, line in enumerate(lines):
        record = _decode(line, index, final=index == last)
        if record is None:
            torn = True
            break
        records.append(record)
    return records, torn


class Journal:
    """Append handle over one journal file.

    ``sync=True`` (the default, and what the service uses) fsyncs every
    append -- the record is on disk before :meth:`append` returns.
    Tests that hammer the journal can pass ``sync=False`` and accept
    page-cache durability.
    """

    def __init__(self, path: str | os.PathLike[str], *, sync: bool = True) -> None:
        self.path = os.fspath(path)
        self.sync = sync
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Append mode: replaying and appending never rewrite history.
        self._fh = open(self.path, "ab")
        self.records_appended = 0

    def append(self, record: dict[str, Any]) -> None:
        """Frame, append, and (by default) fsync one record."""
        self._fh.write(_encode(record))
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self.records_appended += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[dict[str, Any]]:  # pragma: no cover - debugging aid
        records, _ = read_journal(self.path)
        return iter(records)
